//! Machine-readable benchmark records (`BENCH_*.json`).
//!
//! CI tracks the headline detection benchmark over time; the record is
//! exported through `tpiin-obs`'s JSON writer so the schema matches the
//! profile files the CLI emits.

use std::path::Path;
use tpiin_obs::Json;

/// Version of the unified `BENCH_*.json` envelope.  Bump when the
/// shared fields change shape; `bench_check` refuses to compare
/// records across versions.
pub const SCHEMA_VERSION: u64 = 2;

/// Run metadata shared by every bench bin: which benchmark ran, on
/// which datasets, across which arms, on how parallel a host — plus
/// the `aborted` marker set when a run died partway and wrote only
/// what had completed.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchMeta {
    /// Benchmark family (`detect`, `fuse`, `serve`, `loadgen`).
    pub bench: String,
    /// Dataset labels the run covered (`fig7`, `province-0.5`, ...).
    pub datasets: Vec<String>,
    /// Arm labels the run compared (`csr_serial`, `parallel`, ...).
    pub arms: Vec<String>,
    /// Hardware threads the host exposes.
    pub host_cpus: usize,
    /// True when the run failed partway; the payload holds whatever
    /// completed.  `bench_check` fails on an aborted fresh record.
    pub aborted: bool,
}

impl BenchMeta {
    /// Metadata for a completed run on this host.
    pub fn new(
        bench: &str,
        datasets: impl IntoIterator<Item = String>,
        arms: impl IntoIterator<Item = &'static str>,
    ) -> BenchMeta {
        BenchMeta {
            bench: bench.to_string(),
            datasets: datasets.into_iter().collect(),
            arms: arms.into_iter().map(str::to_string).collect(),
            host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            aborted: false,
        }
    }

    /// The envelope fields, in canonical order.
    pub fn fields(&self) -> Vec<(String, Json)> {
        vec![
            ("schema_version".to_string(), Json::Int(SCHEMA_VERSION)),
            ("bench".to_string(), Json::Str(self.bench.clone())),
            (
                "datasets".to_string(),
                Json::Array(self.datasets.iter().map(|d| Json::Str(d.clone())).collect()),
            ),
            (
                "arms".to_string(),
                Json::Array(self.arms.iter().map(|a| Json::Str(a.clone())).collect()),
            ),
            ("host_cpus".to_string(), Json::Int(self.host_cpus as u64)),
            ("aborted".to_string(), Json::Bool(self.aborted)),
        ]
    }
}

/// Wraps `payload` (an object) in the unified envelope: the meta
/// fields first, then the payload's own fields.  A payload field named
/// like an envelope field is dropped in favour of the envelope.
pub fn enveloped(meta: &BenchMeta, payload: Json) -> Json {
    let mut fields = meta.fields();
    if let Json::Object(inner) = payload {
        let reserved: std::collections::BTreeSet<String> =
            fields.iter().map(|(k, _)| k.clone()).collect();
        for (key, value) in inner {
            if !reserved.contains(&key) {
                fields.push((key, value));
            }
        }
    }
    Json::Object(fields)
}

/// Writes `payload` under the unified envelope to `path`.  Every bench
/// bin funnels through here — including on partial failure, where the
/// caller sets `meta.aborted` and passes whatever completed.
pub fn write_enveloped(path: &Path, meta: &BenchMeta, payload: Json) -> std::io::Result<()> {
    std::fs::write(path, enveloped(meta, payload).to_pretty())
}

/// One rate step of an open-loop latency-vs-offered-throughput sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct RateStep {
    /// Offered arrival rate in requests per second (the independent
    /// variable — fixed regardless of how fast the server answers).
    pub offered_rps: f64,
    /// Requests whose scheduled arrival fell inside the step.
    pub sent: usize,
    /// Requests that completed with HTTP 200.
    pub completed: usize,
    /// Requests that errored or were shed (non-200, connect failure).
    pub errors: usize,
    /// Median latency in microseconds, measured from the *scheduled*
    /// arrival time so queueing delay counts (open-loop discipline).
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Completions per second actually achieved during the step.
    pub achieved_rps: f64,
    /// Server-side peak live heap during the step (allocator ledger
    /// watermark, reset at the step boundary).
    pub server_peak_bytes: u64,
}

impl RateStep {
    /// The step as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("offered_rps".to_string(), Json::Float(self.offered_rps)),
            ("sent".to_string(), Json::Int(self.sent as u64)),
            ("completed".to_string(), Json::Int(self.completed as u64)),
            ("errors".to_string(), Json::Int(self.errors as u64)),
            ("p50_us".to_string(), Json::Float(self.p50_us)),
            ("p95_us".to_string(), Json::Float(self.p95_us)),
            ("p99_us".to_string(), Json::Float(self.p99_us)),
            ("max_us".to_string(), Json::Float(self.max_us)),
            ("achieved_rps".to_string(), Json::Float(self.achieved_rps)),
            (
                "server_peak_bytes".to_string(),
                Json::Int(self.server_peak_bytes),
            ),
        ])
    }
}

/// One latency-vs-offered-throughput curve: a workload, a request mix
/// and the swept rate steps.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadCurve {
    /// Workload label (`fig7`, ...).
    pub workload: String,
    /// Endpoint labels in the request mix.
    pub mix: Vec<String>,
    /// Seconds each rate step ran.
    pub step_secs: f64,
    /// The swept steps, in offered-rate order.
    pub steps: Vec<RateStep>,
}

impl LoadCurve {
    /// The curve as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("workload".to_string(), Json::Str(self.workload.clone())),
            (
                "mix".to_string(),
                Json::Array(self.mix.iter().map(|m| Json::Str(m.clone())).collect()),
            ),
            ("step_secs".to_string(), Json::Float(self.step_secs)),
            (
                "steps".to_string(),
                Json::Array(self.steps.iter().map(RateStep::to_json).collect()),
            ),
        ])
    }
}

/// The headline numbers of one detection benchmark run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchRecord {
    /// Wall-clock milliseconds for the detection pass.
    pub wall_ms: f64,
    /// Suspicious groups found.
    pub groups: usize,
    /// SubTPIINs the network segmented into.
    pub subtpiins: usize,
}

impl BenchRecord {
    /// The record as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("wall_ms".to_string(), Json::Float(self.wall_ms)),
            ("groups".to_string(), Json::Int(self.groups as u64)),
            ("subtpiins".to_string(), Json::Int(self.subtpiins as u64)),
        ])
    }

    /// Writes the record to `path` as pretty-printed JSON.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

/// One miner strategy timed end-to-end on a workload's full TPIIN.
///
/// The `name` field doubles as the element label `bench_check` matches
/// array entries by, so reordering strategies never fakes a regression
/// while dropping one is caught; `groups` is an exact-gated count and
/// `mine_ms` a tolerance-gated timing.
#[derive(Clone, Debug, PartialEq)]
pub struct MinerTiming {
    /// Strategy name (`rules`, `circular`, ...).
    pub name: String,
    /// Suspicious groups the strategy mined.
    pub groups: usize,
    /// Wall-clock milliseconds for one full `mine` pass.
    pub mine_ms: f64,
}

impl MinerTiming {
    /// The timing as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("groups".to_string(), Json::Int(self.groups as u64)),
            ("mine_ms".to_string(), Json::Float(self.mine_ms)),
        ])
    }
}

/// One workload timed across the three detection arms: the legacy
/// nested-adjacency shards, the CSR shards run serially, and the CSR
/// shards under the work-stealing scheduler — plus every registered
/// [`GroupMiner`](tpiin_core::GroupMiner) strategy end-to-end.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadRecord {
    /// Workload label (`fig7`, `province-0.5`, ...).
    pub name: String,
    /// Suspicious groups found (identical across arms by construction).
    pub groups: usize,
    /// SubTPIINs the network segmented into.
    pub subtpiins: usize,
    /// Serial detection over the legacy `Vec<Vec<u32>>` adjacency shards.
    pub nested_serial_ms: f64,
    /// Serial detection over the frozen CSR shards.
    pub csr_serial_ms: f64,
    /// Work-stealing detection over the CSR shards at [`threads`](Self::threads).
    pub csr_threads_ms: f64,
    /// Worker-thread count of the stealing arm.
    pub threads: usize,
    /// Per-strategy end-to-end timings (segmentation included).
    pub miners: Vec<MinerTiming>,
}

impl WorkloadRecord {
    /// How much faster the CSR kernel is than the nested adjacency, serially.
    pub fn csr_over_nested(&self) -> f64 {
        self.nested_serial_ms / self.csr_serial_ms
    }

    /// How much faster the stealing scheduler is than serial CSR.
    pub fn thread_speedup(&self) -> f64 {
        self.csr_serial_ms / self.csr_threads_ms
    }

    /// The workload as a JSON value (ratios included, pre-computed).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("groups".to_string(), Json::Int(self.groups as u64)),
            ("subtpiins".to_string(), Json::Int(self.subtpiins as u64)),
            (
                "nested_serial_ms".to_string(),
                Json::Float(self.nested_serial_ms),
            ),
            ("csr_serial_ms".to_string(), Json::Float(self.csr_serial_ms)),
            (
                "csr_threads_ms".to_string(),
                Json::Float(self.csr_threads_ms),
            ),
            ("threads".to_string(), Json::Int(self.threads as u64)),
            (
                "csr_over_nested".to_string(),
                Json::Float(self.csr_over_nested()),
            ),
            (
                "thread_speedup".to_string(),
                Json::Float(self.thread_speedup()),
            ),
            (
                "miners".to_string(),
                Json::Array(self.miners.iter().map(MinerTiming::to_json).collect()),
            ),
        ])
    }
}

/// The full `BENCH_detect.json` payload: every workload, plus the
/// legacy top-level `{wall_ms, groups, subtpiins}` fields (taken from
/// the last — largest — workload's serial CSR arm) so existing trend
/// tooling keeps parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectBench {
    /// Hardware threads the host actually exposes; lets readers judge
    /// whether the stealing arm could physically speed up.
    pub host_cpus: usize,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadRecord>,
}

impl DetectBench {
    /// The record as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(last) = self.workloads.last() {
            fields.push(("wall_ms".to_string(), Json::Float(last.csr_serial_ms)));
            fields.push(("groups".to_string(), Json::Int(last.groups as u64)));
            fields.push(("subtpiins".to_string(), Json::Int(last.subtpiins as u64)));
        }
        fields.push(("host_cpus".to_string(), Json::Int(self.host_cpus as u64)));
        fields.push((
            "workloads".to_string(),
            Json::Array(self.workloads.iter().map(WorkloadRecord::to_json).collect()),
        ));
        Json::Object(fields)
    }

    /// Writes the record to `path` as pretty-printed JSON.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

/// Wall-clock milliseconds of one fusion pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub struct FuseStageMs {
    /// Stage name (`validate`, `contract_persons`, `contract_sccs`,
    /// `attach_trading`, `freeze`, `verify_dag`).
    pub stage: String,
    /// Wall-clock milliseconds.
    pub ms: f64,
}

/// One fusion arm (serial or parallel): total wall time plus the
/// per-stage breakdown from [`tpiin_fusion::FusionReport::stage_timings`].
#[derive(Clone, Debug, PartialEq)]
pub struct FuseArmRecord {
    /// Total wall-clock milliseconds of the whole `fuse_with` call.
    pub total_ms: f64,
    /// Per-stage timings in execution order.
    pub stages: Vec<FuseStageMs>,
}

impl FuseArmRecord {
    /// The arm as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("total_ms".to_string(), Json::Float(self.total_ms)),
            (
                "stages".to_string(),
                Json::Array(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::Object(vec![
                                ("stage".to_string(), Json::Str(s.stage.clone())),
                                ("ms".to_string(), Json::Float(s.ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One workload timed across the two fusion arms: the serial pipeline
/// (`threads = 1`) and the parallel front-end at [`threads`](Self::threads).
#[derive(Clone, Debug, PartialEq)]
pub struct FuseWorkloadRecord {
    /// Workload label (`fig7`, `province-0.5`, ...).
    pub name: String,
    /// TPIIN nodes produced (identical across arms by construction).
    pub tpiin_nodes: usize,
    /// Influence arcs in the fused TPIIN.
    pub influence_arcs: usize,
    /// Trading arcs in the fused TPIIN.
    pub trading_arcs: usize,
    /// Serial arm measurements.
    pub serial: FuseArmRecord,
    /// Parallel arm measurements.
    pub parallel: FuseArmRecord,
    /// Worker-thread count of the parallel arm.
    pub threads: usize,
}

impl FuseWorkloadRecord {
    /// How much faster the parallel front-end is than the serial pipeline.
    pub fn parallel_speedup(&self) -> f64 {
        self.serial.total_ms / self.parallel.total_ms
    }

    /// The workload as a JSON value (speedup included, pre-computed).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "tpiin_nodes".to_string(),
                Json::Int(self.tpiin_nodes as u64),
            ),
            (
                "influence_arcs".to_string(),
                Json::Int(self.influence_arcs as u64),
            ),
            (
                "trading_arcs".to_string(),
                Json::Int(self.trading_arcs as u64),
            ),
            ("serial".to_string(), self.serial.to_json()),
            ("parallel".to_string(), self.parallel.to_json()),
            ("threads".to_string(), Json::Int(self.threads as u64)),
            (
                "parallel_speedup".to_string(),
                Json::Float(self.parallel_speedup()),
            ),
        ])
    }
}

/// The full `BENCH_fuse.json` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct FuseBench {
    /// Hardware threads the host actually exposes; lets readers judge
    /// whether the parallel arm could physically speed up.
    pub host_cpus: usize,
    /// Per-workload measurements.
    pub workloads: Vec<FuseWorkloadRecord>,
}

impl FuseBench {
    /// The record as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("host_cpus".to_string(), Json::Int(self.host_cpus as u64)),
            (
                "workloads".to_string(),
                Json::Array(
                    self.workloads
                        .iter()
                        .map(FuseWorkloadRecord::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the record to `path` as pretty-printed JSON.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

/// Client-observed latency percentiles of one daemon endpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointLatency {
    /// Endpoint label (`healthz`, `groups_behind_arc`, ...).
    pub endpoint: String,
    /// Requests measured.
    pub requests: usize,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
}

impl EndpointLatency {
    /// The endpoint record as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("endpoint".to_string(), Json::Str(self.endpoint.clone())),
            ("requests".to_string(), Json::Int(self.requests as u64)),
            ("p50_us".to_string(), Json::Float(self.p50_us)),
            ("p95_us".to_string(), Json::Float(self.p95_us)),
            ("p99_us".to_string(), Json::Float(self.p99_us)),
        ])
    }
}

/// One served network hammered across its endpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeWorkloadRecord {
    /// Workload label (`fig7`, `province-0.5`, ...).
    pub name: String,
    /// TPIIN nodes served.
    pub nodes: usize,
    /// Suspicious groups in the served snapshot.
    pub groups: usize,
    /// Per-endpoint latency percentiles.
    pub endpoints: Vec<EndpointLatency>,
}

impl ServeWorkloadRecord {
    /// The workload as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("nodes".to_string(), Json::Int(self.nodes as u64)),
            ("groups".to_string(), Json::Int(self.groups as u64)),
            (
                "endpoints".to_string(),
                Json::Array(
                    self.endpoints
                        .iter()
                        .map(EndpointLatency::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

/// The same endpoint measured with per-request tracing on and off —
/// the cost of minting a [`tpiin_obs::TraceContext`], recording the
/// `serve/{endpoint}` span, echoing `x-tpiin-trace` and keeping the
/// replay ring, expressed as an on/off latency ratio.
#[derive(Clone, Debug, PartialEq)]
pub struct TracingOverheadRecord {
    /// Endpoint the two arms hammered (`groups`, ...).
    pub endpoint: String,
    /// Latencies with tracing enabled (the default daemon config).
    pub tracing_on: EndpointLatency,
    /// Latencies with `ServeConfig::tracing` disabled.
    pub tracing_off: EndpointLatency,
}

impl TracingOverheadRecord {
    /// p95 with tracing divided by p95 without; `1.05` means tracing
    /// costs five percent at the tail.
    pub fn p95_ratio(&self) -> f64 {
        self.tracing_on.p95_us / self.tracing_off.p95_us
    }

    /// The overhead record as a JSON value (ratio pre-computed).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("endpoint".to_string(), Json::Str(self.endpoint.clone())),
            ("tracing_on".to_string(), self.tracing_on.to_json()),
            ("tracing_off".to_string(), self.tracing_off.to_json()),
            ("p95_ratio".to_string(), Json::Float(self.p95_ratio())),
        ])
    }
}

/// The same endpoint measured with the continuous-telemetry engine on
/// and off — the cost of the background recorder (timeline sampling +
/// SLO evaluation each tick) plus the per-request slowlog threshold
/// check, expressed as on/off latency ratios.  The acceptance bar is a
/// p99 within one percent of the off arm on the nation workload.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryOverheadRecord {
    /// Endpoint the two arms hammered (`groups`, ...).
    pub endpoint: String,
    /// Latencies with telemetry enabled (the default daemon config).
    pub telemetry_on: EndpointLatency,
    /// Latencies with `ServeConfig::telemetry` disabled.
    pub telemetry_off: EndpointLatency,
}

impl TelemetryOverheadRecord {
    /// p95 with telemetry divided by p95 without.
    pub fn p95_ratio(&self) -> f64 {
        self.telemetry_on.p95_us / self.telemetry_off.p95_us
    }

    /// p99 with telemetry divided by p99 without; `1.01` means the
    /// recorder costs one percent at the tail.
    pub fn p99_ratio(&self) -> f64 {
        self.telemetry_on.p99_us / self.telemetry_off.p99_us
    }

    /// The overhead record as a JSON value (ratios pre-computed; both
    /// are `_ratio` keys, so `bench_check` gates them against its
    /// absolute cap).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("endpoint".to_string(), Json::Str(self.endpoint.clone())),
            ("telemetry_on".to_string(), self.telemetry_on.to_json()),
            ("telemetry_off".to_string(), self.telemetry_off.to_json()),
            ("p95_ratio".to_string(), Json::Float(self.p95_ratio())),
            ("p99_ratio".to_string(), Json::Float(self.p99_ratio())),
        ])
    }
}

/// One snapshot encoding timed end-to-end: bytes on disk and the
/// median wall-clock of a full parse back into a served TPIIN.
///
/// Text and binary arms of the same workload appear as sibling entries
/// (`nation-0.1-text` / `nation-0.1-bin`); `name` is the label
/// `bench_check` matches array elements by, `groups` is an exact gate
/// proving both encodings decode to the same detection, and `load_ms`
/// is the tolerance-gated timing.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotLoadRecord {
    /// Arm label, `<workload>-<encoding>`.
    pub name: String,
    /// Snapshot size on disk in bytes.
    pub bytes: usize,
    /// Median wall-clock milliseconds for one full load (bytes →
    /// [`tpiin_fusion::Tpiin`] with frozen CSR).
    pub load_ms: f64,
    /// Suspicious groups detected over the restored network.
    pub groups: usize,
}

impl SnapshotLoadRecord {
    /// The load record as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("bytes".to_string(), Json::Int(self.bytes as u64)),
            ("load_ms".to_string(), Json::Float(self.load_ms)),
            ("groups".to_string(), Json::Int(self.groups as u64)),
        ])
    }
}

/// The full `BENCH_serve.json` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeBench {
    /// Hardware threads the host actually exposes.
    pub host_cpus: usize,
    /// Daemon worker threads used for the run.
    pub workers: usize,
    /// Concurrent client threads hammering each endpoint.
    pub clients: usize,
    /// Per-workload measurements.
    pub workloads: Vec<ServeWorkloadRecord>,
    /// Tracing on-vs-off arms, when the benchmark ran them.
    pub tracing_overhead: Option<TracingOverheadRecord>,
    /// Telemetry-recorder on-vs-off arms, when the benchmark ran them.
    pub telemetry_overhead: Option<TelemetryOverheadRecord>,
    /// Open-loop latency-vs-offered-throughput curves, when the
    /// benchmark swept them.
    pub load_curves: Vec<LoadCurve>,
    /// Snapshot load-time arms (text vs binary per workload), when the
    /// benchmark measured them.
    pub snapshot_loads: Vec<SnapshotLoadRecord>,
}

impl ServeBench {
    /// The record as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("host_cpus".to_string(), Json::Int(self.host_cpus as u64)),
            ("workers".to_string(), Json::Int(self.workers as u64)),
            ("clients".to_string(), Json::Int(self.clients as u64)),
            (
                "workloads".to_string(),
                Json::Array(
                    self.workloads
                        .iter()
                        .map(ServeWorkloadRecord::to_json)
                        .collect(),
                ),
            ),
        ];
        if let Some(overhead) = &self.tracing_overhead {
            fields.push(("tracing_overhead".to_string(), overhead.to_json()));
        }
        if let Some(overhead) = &self.telemetry_overhead {
            fields.push(("telemetry_overhead".to_string(), overhead.to_json()));
        }
        if !self.load_curves.is_empty() {
            fields.push((
                "load_curves".to_string(),
                Json::Array(self.load_curves.iter().map(LoadCurve::to_json).collect()),
            ));
        }
        if !self.snapshot_loads.is_empty() {
            fields.push((
                "snapshot_loads".to_string(),
                Json::Array(
                    self.snapshot_loads
                        .iter()
                        .map(SnapshotLoadRecord::to_json)
                        .collect(),
                ),
            ));
        }
        Json::Object(fields)
    }

    /// Writes the record to `path` as pretty-printed JSON.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

/// Latency percentiles of one operation family, in microseconds.
/// `p50_us`/`p95_us` are tolerance-gated by `bench_check`; `p99_us`
/// and `max_us` stay informational (shared-runner tail noise).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyUs {
    /// Median latency.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencyUs {
    /// Percentiles over an unsorted sample (microseconds).
    pub fn from_samples(samples: &mut [f64]) -> LatencyUs {
        samples.sort_by(f64::total_cmp);
        let pct = |q: f64| {
            if samples.is_empty() {
                0.0
            } else {
                samples[(q * (samples.len() - 1) as f64).round() as usize]
            }
        };
        LatencyUs {
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: samples.last().copied().unwrap_or(0.0),
        }
    }

    /// The percentiles as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("p50_us".to_string(), Json::Float(self.p50_us)),
            ("p95_us".to_string(), Json::Float(self.p95_us)),
            ("p99_us".to_string(), Json::Float(self.p99_us)),
            ("max_us".to_string(), Json::Float(self.max_us)),
        ])
    }
}

/// One ingest arm replaying the same mutation feed end to end.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestArmRecord {
    /// Arm label (`delta`, `full_rebuild`).
    pub name: String,
    /// Batches replayed.
    pub batches: usize,
    /// Suspicious groups after the full feed (exact-gated: both arms
    /// must land on the same detection).
    pub groups: usize,
    /// Batches applied per second over the whole feed.
    pub batches_per_sec: f64,
    /// Per-batch apply latency percentiles.
    pub apply: LatencyUs,
}

impl IngestArmRecord {
    /// The arm as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("batches".to_string(), Json::Int(self.batches as u64)),
            ("groups".to_string(), Json::Int(self.groups as u64)),
            (
                "batches_per_sec".to_string(),
                Json::Float(self.batches_per_sec),
            ),
            ("apply".to_string(), self.apply.to_json()),
        ])
    }
}

/// The single-batch registry-delta comparison the acceptance bar
/// names: one planted registry batch applied through the engine's
/// bounded incremental path vs a from-scratch fuse + detect of the
/// same resulting registry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegistryDeltaRecord {
    /// Median milliseconds for the engine's incremental apply.
    pub delta_apply_ms: f64,
    /// Median milliseconds for the from-scratch fuse + detect.
    pub full_rebuild_ms: f64,
}

impl RegistryDeltaRecord {
    /// How much faster the incremental path is.
    pub fn speedup(&self) -> f64 {
        self.full_rebuild_ms / self.delta_apply_ms
    }

    /// The comparison as a JSON value (speedup pre-computed).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "delta_apply_ms".to_string(),
                Json::Float(self.delta_apply_ms),
            ),
            (
                "full_rebuild_ms".to_string(),
                Json::Float(self.full_rebuild_ms),
            ),
            ("speedup".to_string(), Json::Float(self.speedup())),
        ])
    }
}

/// The full `BENCH_ingest.json` payload: both replay arms, the
/// single-batch registry-delta comparison, and read latencies observed
/// against a live daemon *while* the feed was streaming into it.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestBench {
    /// Hardware threads the host actually exposes.
    pub host_cpus: usize,
    /// Random trading records per feed batch.
    pub records_per_batch: usize,
    /// Evasion rings planted mid-stream.
    pub planted_groups: usize,
    /// The replay arms (`delta`, `full_rebuild`).
    pub workloads: Vec<IngestArmRecord>,
    /// Single-batch registry-delta timing.
    pub registry_delta: RegistryDeltaRecord,
    /// Read-side `/groups` latencies sampled while the daemon was
    /// ingesting the feed (readers must never block on the writer).
    pub read_while_ingesting: EndpointLatency,
}

impl IngestBench {
    /// The record as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("host_cpus".to_string(), Json::Int(self.host_cpus as u64)),
            (
                "records_per_batch".to_string(),
                Json::Int(self.records_per_batch as u64),
            ),
            (
                "planted_groups".to_string(),
                Json::Int(self.planted_groups as u64),
            ),
            (
                "workloads".to_string(),
                Json::Array(
                    self.workloads
                        .iter()
                        .map(IngestArmRecord::to_json)
                        .collect(),
                ),
            ),
            ("registry_delta".to_string(), self.registry_delta.to_json()),
            (
                "read_while_ingesting".to_string(),
                self.read_while_ingesting.to_json(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serializes_all_three_fields() {
        let record = BenchRecord {
            wall_ms: 12.5,
            groups: 42,
            subtpiins: 7,
        };
        let text = record.to_json().to_pretty();
        assert!(text.contains("\"wall_ms\": 12.5"));
        assert!(text.contains("\"groups\": 42"));
        assert!(text.contains("\"subtpiins\": 7"));
    }

    #[test]
    fn workload_ratios_divide_the_right_way() {
        let w = WorkloadRecord {
            name: "toy".into(),
            groups: 3,
            subtpiins: 2,
            nested_serial_ms: 30.0,
            csr_serial_ms: 20.0,
            csr_threads_ms: 5.0,
            threads: 8,
            miners: Vec::new(),
        };
        assert!((w.csr_over_nested() - 1.5).abs() < 1e-12);
        assert!((w.thread_speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn detect_bench_keeps_legacy_headline_fields() {
        let bench = DetectBench {
            host_cpus: 8,
            workloads: vec![WorkloadRecord {
                name: "province-0.5".into(),
                groups: 42,
                subtpiins: 7,
                nested_serial_ms: 30.0,
                csr_serial_ms: 12.5,
                csr_threads_ms: 4.0,
                threads: 8,
                miners: vec![MinerTiming {
                    name: "rules".into(),
                    groups: 42,
                    mine_ms: 13.0,
                }],
            }],
        };
        let text = bench.to_json().to_pretty();
        assert!(text.contains("\"wall_ms\": 12.5"));
        assert!(text.contains("\"groups\": 42"));
        assert!(text.contains("\"subtpiins\": 7"));
        assert!(text.contains("\"workloads\""));
        assert!(text.contains("\"thread_speedup\""));
        assert!(text.contains("\"csr_over_nested\""));
        assert!(text.contains("\"miners\""));
        assert!(text.contains("\"rules\""));
        assert!(text.contains("\"mine_ms\": 13"));
    }

    #[test]
    fn serve_bench_serializes_percentiles() {
        let bench = ServeBench {
            host_cpus: 8,
            workers: 4,
            clients: 8,
            workloads: vec![ServeWorkloadRecord {
                name: "fig7".into(),
                nodes: 15,
                groups: 3,
                endpoints: vec![EndpointLatency {
                    endpoint: "groups_behind_arc".into(),
                    requests: 200,
                    p50_us: 120.0,
                    p95_us: 340.5,
                    p99_us: 900.0,
                }],
            }],
            tracing_overhead: None,
            telemetry_overhead: None,
            load_curves: Vec::new(),
            snapshot_loads: vec![SnapshotLoadRecord {
                name: "nation-0.1-bin".into(),
                bytes: 1024,
                load_ms: 2.5,
                groups: 7,
            }],
        };
        let text = bench.to_json().to_pretty();
        assert!(text.contains("\"workers\": 4"));
        assert!(text.contains("\"snapshot_loads\""));
        assert!(text.contains("\"nation-0.1-bin\""));
        assert!(text.contains("\"load_ms\": 2.5"));
        assert!(text.contains("\"groups_behind_arc\""));
        assert!(text.contains("\"p50_us\": 120"));
        assert!(text.contains("\"p95_us\": 340.5"));
        assert!(text.contains("\"p99_us\": 900"));
        // Without the overhead arms the fields are omitted, so
        // pre-existing trend tooling sees the exact schema it always
        // did.
        assert!(!text.contains("tracing_overhead"));
        assert!(!text.contains("telemetry_overhead"));
    }

    #[test]
    fn tracing_overhead_ratio_divides_on_by_off() {
        let lat = |p95: f64| EndpointLatency {
            endpoint: "groups".into(),
            requests: 200,
            p50_us: p95 / 2.0,
            p95_us: p95,
            p99_us: p95 * 2.0,
        };
        let overhead = TracingOverheadRecord {
            endpoint: "groups".into(),
            tracing_on: lat(210.0),
            tracing_off: lat(200.0),
        };
        assert!((overhead.p95_ratio() - 1.05).abs() < 1e-12);
        let bench = ServeBench {
            host_cpus: 8,
            workers: 4,
            clients: 8,
            workloads: Vec::new(),
            tracing_overhead: Some(overhead),
            telemetry_overhead: Some(TelemetryOverheadRecord {
                endpoint: "groups".into(),
                telemetry_on: lat(202.0),
                telemetry_off: lat(200.0),
            }),
            load_curves: Vec::new(),
            snapshot_loads: Vec::new(),
        };
        let text = bench.to_json().to_pretty();
        // Without snapshot-load arms the field is omitted.
        assert!(!text.contains("snapshot_loads"), "{text}");
        assert!(text.contains("\"tracing_overhead\""), "{text}");
        assert!(text.contains("\"tracing_on\""), "{text}");
        assert!(text.contains("\"tracing_off\""), "{text}");
        assert!(text.contains("\"p95_ratio\": 1.05"), "{text}");
        // The telemetry arms carry both tail ratios for the gate.
        assert!(text.contains("\"telemetry_overhead\""), "{text}");
        assert!(text.contains("\"telemetry_on\""), "{text}");
        assert!(text.contains("\"telemetry_off\""), "{text}");
        assert!(text.contains("\"p99_ratio\": 1.01"), "{text}");
    }

    #[test]
    fn fuse_bench_serializes_stages_and_speedup() {
        let arm = |total: f64| FuseArmRecord {
            total_ms: total,
            stages: vec![
                FuseStageMs {
                    stage: "validate".into(),
                    ms: total / 2.0,
                },
                FuseStageMs {
                    stage: "freeze".into(),
                    ms: total / 2.0,
                },
            ],
        };
        let bench = FuseBench {
            host_cpus: 4,
            workloads: vec![FuseWorkloadRecord {
                name: "province-0.5".into(),
                tpiin_nodes: 1000,
                influence_arcs: 2000,
                trading_arcs: 500,
                serial: arm(8.0),
                parallel: arm(4.0),
                threads: 4,
            }],
        };
        assert!((bench.workloads[0].parallel_speedup() - 2.0).abs() < 1e-12);
        let text = bench.to_json().to_pretty();
        assert!(text.contains("\"host_cpus\": 4"));
        assert!(text.contains("\"parallel_speedup\": 2"));
        assert!(text.contains("\"validate\""));
        assert!(text.contains("\"freeze\""));
        assert!(text.contains("\"tpiin_nodes\": 1000"));
    }

    #[test]
    fn envelope_prepends_meta_and_wins_on_collision() {
        let meta = BenchMeta {
            bench: "detect".into(),
            datasets: vec!["fig7".into()],
            arms: vec!["csr_serial".into()],
            host_cpus: 4,
            aborted: false,
        };
        let payload = Json::Object(vec![
            ("host_cpus".to_string(), Json::Int(999)),
            ("wall_ms".to_string(), Json::Float(1.5)),
        ]);
        let text = enveloped(&meta, payload).to_pretty();
        assert!(text.contains("\"schema_version\": 2"));
        assert!(text.contains("\"bench\": \"detect\""));
        assert!(text.contains("\"datasets\""));
        assert!(text.contains("\"arms\""));
        assert!(text.contains("\"aborted\": false"));
        assert!(text.contains("\"host_cpus\": 4"), "envelope wins: {text}");
        assert!(!text.contains("999"));
        assert!(text.contains("\"wall_ms\": 1.5"));
    }

    #[test]
    fn ingest_bench_serializes_arms_and_speedup() {
        let lat = LatencyUs {
            p50_us: 100.0,
            p95_us: 200.0,
            p99_us: 900.0,
            max_us: 1200.0,
        };
        let arm = |name: &str, bps: f64| IngestArmRecord {
            name: name.into(),
            batches: 24,
            groups: 17,
            batches_per_sec: bps,
            apply: lat,
        };
        let bench = IngestBench {
            host_cpus: 8,
            records_per_batch: 64,
            planted_groups: 3,
            workloads: vec![arm("delta", 900.0), arm("full_rebuild", 40.0)],
            registry_delta: RegistryDeltaRecord {
                delta_apply_ms: 0.5,
                full_rebuild_ms: 10.0,
            },
            read_while_ingesting: EndpointLatency {
                endpoint: "groups".into(),
                requests: 500,
                p50_us: 150.0,
                p95_us: 400.0,
                p99_us: 2000.0,
            },
        };
        assert!((bench.registry_delta.speedup() - 20.0).abs() < 1e-12);
        let text = bench.to_json().to_pretty();
        for key in [
            "\"delta\"",
            "\"full_rebuild\"",
            "\"batches_per_sec\"",
            "\"apply\"",
            "\"speedup\": 20",
            "\"read_while_ingesting\"",
            "\"planted_groups\": 3",
            "\"groups\": 17",
        ] {
            assert!(text.contains(key), "missing {key}: {text}");
        }
    }

    #[test]
    fn latency_percentiles_come_from_the_sorted_sample() {
        let mut samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        samples.reverse();
        let lat = LatencyUs::from_samples(&mut samples);
        // Nearest-rank over indices 0..=99: q * 99, rounded.
        assert_eq!(lat.p50_us, 51.0);
        assert_eq!(lat.p95_us, 95.0);
        assert_eq!(lat.p99_us, 99.0);
        assert_eq!(lat.max_us, 100.0);
    }

    #[test]
    fn load_curve_serializes_every_step_column() {
        let curve = LoadCurve {
            workload: "fig7".into(),
            mix: vec!["groups".into(), "company".into()],
            step_secs: 1.0,
            steps: vec![RateStep {
                offered_rps: 100.0,
                sent: 100,
                completed: 98,
                errors: 2,
                p50_us: 150.0,
                p95_us: 900.0,
                p99_us: 2500.0,
                max_us: 9000.0,
                achieved_rps: 97.5,
                server_peak_bytes: 1 << 20,
            }],
        };
        let text = curve.to_json().to_pretty();
        for key in [
            "offered_rps",
            "p50_us",
            "p95_us",
            "p99_us",
            "achieved_rps",
            "server_peak_bytes",
            "step_secs",
        ] {
            assert!(text.contains(key), "missing {key}: {text}");
        }
    }
}
