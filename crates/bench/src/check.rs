//! The perf-regression gate: compares a fresh `BENCH_*.json` record
//! against a committed baseline and reports every regression.
//!
//! Two classes of key are gated:
//!
//! * **Timing keys** (`*_ms`, `*_us`, `*_ns`) regress when the fresh
//!   value exceeds `baseline × tolerance + floor`.  The multiplicative
//!   tolerance absorbs host-speed differences between the machine that
//!   committed the baseline and the CI runner; the additive floor
//!   keeps microsecond-scale jitter on trivial workloads from tripping
//!   a gate meant for real slowdowns.
//! * **Deterministic count keys** (`groups`, `subtpiins`,
//!   `tpiin_nodes`, arc counts...) must match **exactly**, in both
//!   directions — they are pure functions of the dataset, so any drift
//!   is a correctness change sneaking in through a perf PR, the one
//!   thing a noisy-timing gate could never catch.
//!
//! * **Overhead ratios** (`*_ratio`: tracing or telemetry on/off on
//!   the same host in the same run) are gated against an absolute
//!   ceiling, [`RATIO_CAP`] — host-speed tolerance does not apply to a
//!   dimensionless same-host comparison.
//!
//! Everything else — host shape (`host_cpus`, `workers`), memory
//! telemetry (inherently host-dependent), request
//! tallies — is informational and skipped.  An `aborted: true` marker
//! in the fresh record always fails: a bench that died partway must
//! not pass the gate on the strength of the steps it skipped.

use tpiin_io::json::Json;

/// Gate configuration.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Multiplicative slack on timing keys (3.0 = fresh may be up to
    /// three times the baseline).  Generous by default: CI runners and
    /// dev machines differ widely, and the exact-count keys provide
    /// the machine-independent tripwire.
    pub ratio: f64,
    /// Additive floor in the key's own unit (ms keys get
    /// `floor_ms`, us keys `floor_ms × 1000`, ns keys `× 1e6`).
    pub floor_ms: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            ratio: 3.0,
            floor_ms: 5.0,
        }
    }
}

/// Keys whose values are deterministic functions of the dataset and
/// must match the baseline exactly.
const EXACT_KEYS: &[&str] = &[
    "groups",
    "subtpiins",
    "tpiin_nodes",
    "influence_arcs",
    "trading_arcs",
    "nodes",
    "threads",
    "schema_version",
    // Ingest-bench feed shape: pure config echoes, so any drift means
    // the benchmark silently changed its workload.
    "batches",
    "records_per_batch",
    "planted_groups",
];

/// Keys that look numeric but are never gated.  Besides host shape
/// and memory telemetry, the open-loop tail keys (`p99_us`, `max_us`)
/// are informational: on a shared CI runner a single scheduler hiccup
/// moves them by orders of magnitude, so gating them means flakes, not
/// protection — p50/p95 carry the regression signal.
const SKIP_KEYS: &[&str] = &[
    "host_cpus",
    "workers",
    "clients",
    "requests",
    "sent",
    "completed",
    "errors",
    "offered_rps",
    "achieved_rps",
    "server_peak_bytes",
    "step_secs",
    "weight",
    "p99_us",
    "max_us",
];

/// Ceiling for dimensionless on/off overhead ratios (`p95_ratio`,
/// `p99_ratio`).  Both arms of a ratio are measured within one run on
/// one host, so the host-speed `tolerance` multiplier does not apply;
/// an absolute cap is the honest gate.  The slack over 1.0 absorbs
/// shared-runner tail noise (both arms sample p95/p99 independently)
/// while still catching an instrumentation path that grew a real
/// percentage cost — the ratified baselines record ratios within a
/// percent or two of 1.0.
pub const RATIO_CAP: f64 = 1.5;

fn is_timing_key(key: &str) -> Option<f64> {
    // Unit scale relative to milliseconds.
    if key.ends_with("_ms") {
        Some(1.0)
    } else if key.ends_with("_us") {
        Some(1e3)
    } else if key.ends_with("_ns") {
        Some(1e6)
    } else {
        None
    }
}

/// Compares `fresh` against `baseline`; returns one human-readable
/// line per regression (empty = gate passes).
pub fn compare(baseline: &Json, fresh: &Json, tol: &Tolerances) -> Vec<String> {
    let mut regressions = Vec::new();
    if let Some(Json::Bool(true)) = fresh.get("aborted") {
        regressions.push("fresh record is marked aborted (partial run)".to_string());
    }
    walk(baseline, fresh, "", tol, &mut regressions);
    regressions
}

/// Array elements are matched by their `name`/`workload`/`stage`/
/// `endpoint` label when present, by index otherwise — so reordering
/// workloads doesn't fake a regression, but dropping one is caught.
fn element_label(value: &Json) -> Option<String> {
    for key in ["name", "workload", "stage", "endpoint"] {
        if let Some(label) = value.get(key).and_then(Json::as_str) {
            return Some(format!("{key}={label}"));
        }
    }
    None
}

fn walk(baseline: &Json, fresh: &Json, path: &str, tol: &Tolerances, out: &mut Vec<String>) {
    match (baseline, fresh) {
        (Json::Object(base_fields), Json::Object(_)) => {
            for (key, base_value) in base_fields {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match fresh.get(key) {
                    Some(fresh_value) => {
                        compare_leaf(key, base_value, fresh_value, &child_path, tol, out);
                        walk(base_value, fresh_value, &child_path, tol, out);
                    }
                    None => out.push(format!(
                        "{child_path}: present in baseline, missing in fresh"
                    )),
                }
            }
        }
        (Json::Array(base_items), Json::Array(fresh_items)) => {
            for (i, base_item) in base_items.iter().enumerate() {
                let (fresh_item, label) = match element_label(base_item) {
                    Some(label) => (
                        fresh_items
                            .iter()
                            .find(|f| element_label(f).as_deref() == Some(label.as_str())),
                        label,
                    ),
                    None => (fresh_items.get(i), format!("[{i}]")),
                };
                let child_path = format!("{path}[{label}]");
                match fresh_item {
                    Some(fresh_item) => walk(base_item, fresh_item, &child_path, tol, out),
                    None => out.push(format!(
                        "{child_path}: present in baseline, missing in fresh"
                    )),
                }
            }
        }
        _ => {}
    }
}

fn compare_leaf(
    key: &str,
    base: &Json,
    fresh: &Json,
    path: &str,
    tol: &Tolerances,
    out: &mut Vec<String>,
) {
    let (Some(base_num), Some(fresh_num)) = (base.as_f64(), fresh.as_f64()) else {
        return;
    };
    if SKIP_KEYS.contains(&key) {
        return;
    }
    if EXACT_KEYS.contains(&key) {
        if base_num != fresh_num {
            out.push(format!(
                "{path}: deterministic count changed {base_num} -> {fresh_num}"
            ));
        }
        return;
    }
    if key.ends_with("_ratio") {
        if fresh_num > RATIO_CAP {
            out.push(format!(
                "{path}: overhead ratio {fresh_num:.3} exceeds the absolute cap {RATIO_CAP}"
            ));
        }
        return;
    }
    if let Some(unit_scale) = is_timing_key(key) {
        let limit = base_num * tol.ratio + tol.floor_ms * unit_scale;
        if fresh_num > limit {
            out.push(format!(
                "{path}: {fresh_num:.2} exceeds {base_num:.2} x {} + floor (limit {limit:.2})",
                tol.ratio
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).expect("test JSON parses")
    }

    #[test]
    fn passes_identical_records() {
        let record = parse(
            r#"{"wall_ms": 10.0, "groups": 3, "workloads": [{"name": "fig7", "csr_serial_ms": 1.5}]}"#,
        );
        assert!(compare(&record, &record, &Tolerances::default()).is_empty());
    }

    #[test]
    fn fails_on_timing_regression_beyond_tolerance() {
        let base = parse(r#"{"wall_ms": 10.0}"#);
        let fresh = parse(r#"{"wall_ms": 100.0}"#);
        let tol = Tolerances {
            ratio: 3.0,
            floor_ms: 5.0,
        };
        let regs = compare(&base, &fresh, &tol);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("wall_ms"));
    }

    #[test]
    fn tolerance_and_floor_absorb_noise() {
        let base = parse(r#"{"wall_ms": 10.0, "p95_us": 100.0}"#);
        // 25ms < 10*3 + 5; 4000us < 100*3 + 5000.
        let fresh = parse(r#"{"wall_ms": 25.0, "p95_us": 4000.0}"#);
        assert!(compare(&base, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn count_drift_fails_even_when_faster() {
        let base = parse(r#"{"wall_ms": 10.0, "groups": 3}"#);
        let fresh = parse(r#"{"wall_ms": 1.0, "groups": 2}"#);
        let regs = compare(&base, &fresh, &Tolerances::default());
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("groups"), "{regs:?}");
    }

    #[test]
    fn aborted_fresh_record_fails() {
        let base = parse(r#"{"aborted": false, "wall_ms": 10.0}"#);
        let fresh = parse(r#"{"aborted": true, "wall_ms": 10.0}"#);
        let regs = compare(&base, &fresh, &Tolerances::default());
        assert!(!regs.is_empty());
        assert!(regs[0].contains("aborted"));
    }

    #[test]
    fn workloads_match_by_name_not_index() {
        let base = parse(
            r#"{"workloads": [{"name": "a", "wall_ms": 5.0}, {"name": "b", "wall_ms": 7.0}]}"#,
        );
        let fresh = parse(
            r#"{"workloads": [{"name": "b", "wall_ms": 7.0}, {"name": "a", "wall_ms": 5.0}]}"#,
        );
        assert!(compare(&base, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn missing_workload_is_a_regression() {
        let base = parse(r#"{"workloads": [{"name": "a", "wall_ms": 5.0}]}"#);
        let fresh = parse(r#"{"workloads": []}"#);
        let regs = compare(&base, &fresh, &Tolerances::default());
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("missing"), "{regs:?}");
    }

    #[test]
    fn overhead_ratios_are_gated_by_the_absolute_cap() {
        // Within the cap: fine even when worse than the baseline (both
        // arms are same-host, but tails still jitter independently).
        let base = parse(r#"{"p99_ratio": 1.01}"#);
        let fresh = parse(r#"{"p99_ratio": 1.3}"#);
        assert!(compare(&base, &fresh, &Tolerances::default()).is_empty());
        // Past the cap: the instrumentation grew a real percentage
        // cost, regardless of how generous the timing tolerance is.
        let fresh = parse(r#"{"p99_ratio": 1.8}"#);
        let loose = Tolerances {
            ratio: 100.0,
            floor_ms: 1000.0,
        };
        let regs = compare(&base, &fresh, &loose);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("p99_ratio"), "{regs:?}");
    }

    #[test]
    fn host_and_memory_keys_are_not_gated() {
        let base = parse(r#"{"host_cpus": 64, "server_peak_bytes": 1000, "p99_us": 100.0}"#);
        let fresh = parse(r#"{"host_cpus": 1, "server_peak_bytes": 999999999, "p99_us": 90000.0}"#);
        assert!(compare(&base, &fresh, &Tolerances::default()).is_empty());
    }
}
