//! End-to-end tests for the `bench_check` CI gate binary: the gate
//! must pass on healthy records, fail (non-zero exit) on a synthetic
//! regression, and handle the `--update` / missing-baseline flows.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(stem: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpiin_check_gate_{stem}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write(dir: &Path, name: &str, text: &str) {
    std::fs::write(dir.join(name), text).expect("write record");
}

fn run_check(args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_bench_check"))
        .args(args)
        .output()
        .expect("run bench_check");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.success(), text)
}

const HEALTHY: &str = r#"{
  "schema_version": 2,
  "bench": "detect",
  "aborted": false,
  "wall_ms": 10.0,
  "groups": 3,
  "workloads": [{"name": "fig7", "csr_serial_ms": 1.5, "groups": 3}]
}"#;

#[test]
fn gate_passes_when_fresh_matches_baseline() {
    let base = temp_dir("pass_base");
    let fresh = temp_dir("pass_fresh");
    write(&base, "BENCH_detect.json", HEALTHY);
    write(&fresh, "BENCH_detect.json", HEALTHY);
    let (ok, text) = run_check(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(ok, "gate should pass: {text}");
    assert!(text.contains("ok"), "{text}");
}

#[test]
fn gate_fails_on_synthetic_timing_regression() {
    let base = temp_dir("slow_base");
    let fresh = temp_dir("slow_fresh");
    write(&base, "BENCH_detect.json", HEALTHY);
    // 500 ms >> 10 ms * 3 + 5 ms: an unambiguous slowdown.
    write(
        &fresh,
        "BENCH_detect.json",
        &HEALTHY.replace("\"wall_ms\": 10.0", "\"wall_ms\": 500.0"),
    );
    let (ok, text) = run_check(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(!ok, "gate must fail on a regression: {text}");
    assert!(text.contains("wall_ms"), "{text}");
    assert!(text.contains("FAIL"), "{text}");
}

#[test]
fn gate_fails_on_count_drift_and_aborted_records() {
    let base = temp_dir("drift_base");
    let fresh = temp_dir("drift_fresh");
    write(&base, "BENCH_detect.json", HEALTHY);
    write(
        &fresh,
        "BENCH_detect.json",
        &HEALTHY.replace("\"groups\": 3,", "\"groups\": 2,"),
    );
    let (ok, text) = run_check(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(!ok, "count drift must fail: {text}");

    write(
        &fresh,
        "BENCH_detect.json",
        &HEALTHY.replace("\"aborted\": false", "\"aborted\": true"),
    );
    let (ok, text) = run_check(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(!ok, "aborted fresh record must fail: {text}");
    assert!(text.contains("aborted"), "{text}");
}

#[test]
fn missing_baseline_fails_unless_updating() {
    let base = temp_dir("missing_base");
    let fresh = temp_dir("missing_fresh");
    write(&fresh, "BENCH_detect.json", HEALTHY);

    let (ok, text) = run_check(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(!ok, "missing baseline must fail: {text}");
    assert!(text.contains("no committed baseline"), "{text}");

    let (ok, text) = run_check(&["--update", base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(ok, "--update should create the baseline: {text}");
    assert!(base.join("BENCH_detect.json").is_file());

    // With the baseline ratified, the plain gate now passes.
    let (ok, text) = run_check(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(ok, "gate should pass after --update: {text}");
}

#[test]
fn wider_tolerance_absorbs_a_borderline_slowdown() {
    let base = temp_dir("tol_base");
    let fresh = temp_dir("tol_fresh");
    write(&base, "BENCH_detect.json", HEALTHY);
    // 80 ms fails the default 3x + 5ms gate but passes at 10x.
    write(
        &fresh,
        "BENCH_detect.json",
        &HEALTHY.replace("\"wall_ms\": 10.0", "\"wall_ms\": 80.0"),
    );
    let (ok, _) = run_check(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(!ok);
    let (ok, text) = run_check(&[
        "--tolerance",
        "10",
        base.to_str().unwrap(),
        fresh.to_str().unwrap(),
    ]);
    assert!(ok, "10x tolerance should absorb it: {text}");
}
