//! **Table 1** — detection over the trading-probability sweep.
//!
//! The paper's Table 1 reports suspicious-group and suspicious-arc counts
//! for twenty trading probabilities on the 4578-node province network.
//! This bench measures the MSG-phase (Algorithm 1 + 2 + matching) at a
//! representative subset of the sweep; the full table with counts is
//! printed by `cargo run --release -p tpiin-cli -- table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_core::{Detector, DetectorConfig};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_detection");
    group.sample_size(20);
    let detector = Detector::new(DetectorConfig {
        collect_groups: false,
        ..Default::default()
    });
    for p in [0.002, 0.01, 0.05, 0.1] {
        let tpiin = tpiin_fixture(1.0, p, 20170417);
        group.bench_with_input(BenchmarkId::from_parameter(p), &tpiin, |b, tpiin| {
            b.iter(|| {
                let result = detector.detect(black_box(tpiin));
                black_box(result.group_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
