//! **Section 6 drill-down** — per-arc group query vs running the full
//! detector and filtering.
//!
//! The deployed monitoring system answers "show me the suspicious groups
//! behind this transaction" interactively.  `groups_behind_arc` restricts
//! mining to the ancestor cone of the arc's two endpoints; this bench
//! measures the gap vs re-running Algorithm 1 on the whole TPIIN.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_core::{detect, groups_behind_arc};

fn bench_query(c: &mut Criterion) {
    let tpiin = tpiin_fixture(1.0, 0.01, 20170417);
    // Pick a handful of genuinely suspicious arcs to query.
    let arcs: Vec<_> = detect(&tpiin)
        .suspicious_trading_arcs
        .iter()
        .copied()
        .take(8)
        .collect();
    assert!(!arcs.is_empty());

    let mut group = c.benchmark_group("query_one_arc");
    group.sample_size(20);
    group.bench_function("groups_behind_arc_x8", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(s, t) in &arcs {
                total += groups_behind_arc(black_box(&tpiin), s, t).len();
            }
            black_box(total)
        });
    });
    group.bench_function("full_detect_then_filter", |b| {
        b.iter(|| {
            let result = detect(black_box(&tpiin));
            let mut total = 0usize;
            for &(s, t) in &arcs {
                total += result
                    .groups
                    .iter()
                    .filter(|g| g.trading_arc == (s, t))
                    .count();
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
