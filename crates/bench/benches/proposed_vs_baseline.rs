//! **Efficiency claim (§5.2)** — the proposed pattern-tree detector vs the
//! global traversing baseline on the same TPIIN.
//!
//! The paper's central efficiency argument is that matching component
//! patterns from indegree-zero roots avoids the combinatorial explosion of
//! enumerating trails between *all* node pairs.  Both arms produce
//! identical group sets (verified by tests); this bench shows the cost
//! gap and how it widens with trading density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_core::baseline::detect_baseline;
use tpiin_core::{Detector, DetectorConfig};

fn bench_proposed_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("proposed_vs_baseline");
    group.sample_size(10);
    let detector = Detector::new(DetectorConfig {
        collect_groups: true,
        ..Default::default()
    });
    for p in [0.002, 0.01, 0.05] {
        let tpiin = tpiin_fixture(1.0, p, 20170417);
        group.bench_with_input(BenchmarkId::new("proposed", p), &tpiin, |b, tpiin| {
            b.iter(|| black_box(detector.detect(black_box(tpiin)).group_count()));
        });
        group.bench_with_input(BenchmarkId::new("baseline", p), &tpiin, |b, tpiin| {
            b.iter(|| black_box(detect_baseline(black_box(tpiin), usize::MAX).groups.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_proposed_vs_baseline);
criterion_main!(benches);
