//! **Figs. 9–10 / Algorithm 2** — patterns-tree construction and component
//! pattern base generation.
//!
//! Measures the per-subTPIIN cost of Algorithm 2: building the patterns
//! tree for every root, and materializing the potential component pattern
//! base, on the largest conglomerate component of the province network.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_core::{generate_pattern_base, segment_tpiin, PatternsTree, SubTpiin};

fn largest_sub(tpiin: &tpiin_fusion::Tpiin) -> SubTpiin {
    segment_tpiin(tpiin)
        .into_iter()
        .max_by_key(SubTpiin::node_count)
        .expect("province has components")
}

fn bench_patterns_tree(c: &mut Criterion) {
    let tpiin = tpiin_fixture(1.0, 0.01, 20170417);
    let sub = largest_sub(&tpiin);
    let roots: Vec<u32> = sub.roots().collect();
    let mut group = c.benchmark_group("patterns_tree");
    group.sample_size(30);

    group.bench_function("build_all_roots", |b| {
        b.iter(|| {
            let mut total_nodes = 0usize;
            for &root in &roots {
                let tree = PatternsTree::build(black_box(&sub), root, usize::MAX)
                    .expect("no overflow at province scale");
                total_nodes += tree.nodes.len();
            }
            black_box(total_nodes)
        });
    });

    group.bench_function("generate_pattern_base", |b| {
        b.iter(|| {
            black_box(
                generate_pattern_base(black_box(&sub), usize::MAX)
                    .expect("no overflow")
                    .len(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_patterns_tree);
criterion_main!(benches);
