//! **Two-phase pipeline (Fig. 4)** — ITE screening cost, one-by-one over
//! every transaction vs restricted to the MSG phase's suspicious arcs.
//!
//! The end-to-end two-phase arm includes the MSG detection itself, so the
//! comparison is fair: (detect + screen suspicious) vs (screen all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::province_with_trading;
use tpiin_core::{Detector, DetectorConfig};
use tpiin_fusion::fuse;
use tpiin_ite::generator::{generate_transactions, TransactionGenConfig};
use tpiin_ite::{ItePhase, MarketModel, ScreeningScope};

fn bench_two_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("ite_two_phase");
    group.sample_size(10);
    for p in [0.002, 0.01] {
        let registry = province_with_trading(1.0, p, 20170417);
        let (tpiin, _) = fuse(&registry).expect("generated registry fuses");
        let detector = Detector::new(DetectorConfig {
            collect_groups: false,
            ..Default::default()
        });
        let msg = detector.detect(&tpiin);
        let scope = ScreeningScope::from_msg(&tpiin, &msg);
        let ScreeningScope::SuspiciousArcs(ref pairs) = scope else {
            unreachable!()
        };
        // More detail records per arc to make screening volume realistic.
        let gen = generate_transactions(
            &registry,
            pairs,
            &TransactionGenConfig {
                transactions_per_arc: (3, 8),
                ..Default::default()
            },
        );
        let market = MarketModel::estimate(&gen.db);
        let ite = ItePhase::default();

        group.bench_with_input(BenchmarkId::new("one_by_one", p), &gen.db, |b, db| {
            b.iter(|| {
                let (findings, examined) =
                    ite.screen(black_box(db), &market, &ScreeningScope::AllTransactions);
                black_box((findings.len(), examined))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("two_phase_incl_msg", p),
            &gen.db,
            |b, db| {
                b.iter(|| {
                    let msg = detector.detect(black_box(&tpiin));
                    let scope = ScreeningScope::from_msg(&tpiin, &msg);
                    let (findings, examined) = ite.screen(black_box(db), &market, &scope);
                    black_box((findings.len(), examined))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_two_phase);
criterion_main!(benches);
