//! **Figs. 11–16** — multi-network fusion cost.
//!
//! The figures show the homogeneous stage graphs (`G1`, `G2`, `G3`, the
//! antecedent network, `G4`) and the final TPIIN for the province
//! dataset.  This bench measures building them: the individual stage
//! builders and the fused end-to-end pipeline, at two trading densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::province_with_trading;
use tpiin_fusion::{fuse, stages};

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion");
    group.sample_size(20);
    for p in [0.002, 0.05] {
        let registry = province_with_trading(1.0, p, 20170417);
        group.bench_with_input(BenchmarkId::new("fuse_end_to_end", p), &registry, |b, r| {
            b.iter(|| black_box(fuse(black_box(r)).unwrap().1.tpiin_nodes));
        });
    }
    let registry = province_with_trading(1.0, 0.002, 20170417);
    group.bench_function("stage_g1_interdependence", |b| {
        b.iter(|| black_box(stages::build_g1(black_box(&registry)).edge_count()));
    });
    group.bench_function("stage_g2_influence", |b| {
        b.iter(|| black_box(stages::build_g2(black_box(&registry)).edge_count()));
    });
    group.bench_function("stage_investment_scc_partition", |b| {
        b.iter(|| black_box(stages::company_syndicates(black_box(&registry)).group_count()));
    });
    group.bench_function("stage_g4_trading", |b| {
        b.iter(|| black_box(stages::build_trading_graph(black_box(&registry)).edge_count()));
    });
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
