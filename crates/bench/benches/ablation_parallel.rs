//! **Ablation** — parallel detection over (subTPIIN, root) work items,
//! the paper's "parallel and distributed computation" future-work item.
//!
//! Output is bit-identical across thread counts (ordered merge); this
//! bench measures the speedup on the dense end of the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_core::{Detector, DetectorConfig};

fn bench_parallel(c: &mut Criterion) {
    let tpiin = tpiin_fixture(1.0, 0.05, 20170417);
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(15);
    for threads in [1usize, 2, 4, 8] {
        let detector = Detector::new(DetectorConfig {
            collect_groups: false,
            threads,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(threads), &tpiin, |b, tpiin| {
            b.iter(|| black_box(detector.detect(black_box(tpiin)).group_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
