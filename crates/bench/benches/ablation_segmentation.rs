//! **Ablation** — the divide-and-conquer subTPIIN segmentation of
//! Algorithm 1 vs mining the whole TPIIN as a single unit.
//!
//! Segmentation discards cross-component trading arcs before any pattern
//! tree is built and keeps per-root working sets small.  Correctness is
//! identical (tested in `tpiin-core`); this measures what the strategy
//! buys in time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_core::{whole_tpiin, Detector, DetectorConfig};

fn bench_segmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_segmentation");
    group.sample_size(15);
    let detector = Detector::new(DetectorConfig {
        collect_groups: false,
        ..Default::default()
    });
    for p in [0.002, 0.02] {
        let tpiin = tpiin_fixture(1.0, p, 20170417);
        group.bench_with_input(BenchmarkId::new("segmented", p), &tpiin, |b, tpiin| {
            b.iter(|| black_box(detector.detect(black_box(tpiin)).group_count()));
        });
        group.bench_with_input(BenchmarkId::new("unsegmented", p), &tpiin, |b, tpiin| {
            b.iter(|| {
                let whole = whole_tpiin(black_box(tpiin));
                black_box(detector.detect_segmented(tpiin, &[whole]).group_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segmentation);
criterion_main!(benches);
