//! **Ablation** — tree-indexed pattern matching vs a naive all-pairs scan
//! over the materialized component pattern base.
//!
//! The paper's Appendix B matches component patterns per antecedent.  The
//! detector instead matches on the patterns tree via an endpoint index,
//! which avoids materializing pattern prefixes and skips the quadratic
//! scan.  The naive arm here does what a direct reading of the pattern
//! base suggests: group materialized patterns by root, then test every
//! (type-(b), any) pair for the `Ai ≡ Cj` condition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_core::{generate_pattern_base, match_root, segment_tpiin, PatternsTree, SubTpiin};
use tpiin_graph::NodeId;

/// The naive matcher: all-pairs over the materialized pattern base.
/// Returns the number of matched pairs (a cost model; the tree matcher's
/// dedup semantics differ slightly, so counts are not compared here).
fn naive_match(sub: &SubTpiin) -> usize {
    let base = generate_pattern_base(sub, usize::MAX).expect("no overflow");
    // Group patterns by antecedent (first node).
    let mut by_root: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, p) in base.iter().enumerate() {
        by_root.entry(p.nodes[0]).or_default().push(i);
    }
    let mut matches = 0usize;
    for indices in by_root.values() {
        for &i in indices {
            let Some(end) = base[i].trading_target else {
                continue;
            };
            for &j in indices {
                if i == j {
                    continue;
                }
                if base[j].nodes.contains(&end) {
                    matches += 1;
                }
            }
        }
    }
    matches
}

fn tree_match(sub: &SubTpiin) -> usize {
    let mut groups = 0usize;
    for root in sub.roots() {
        let tree = PatternsTree::build(sub, root, usize::MAX).expect("no overflow");
        match_root(sub, &tree, |_| groups += 1);
    }
    groups
}

fn bench_matching(c: &mut Criterion) {
    let tpiin = tpiin_fixture(1.0, 0.01, 20170417);
    let subs = segment_tpiin(&tpiin);
    let sub = subs
        .iter()
        .max_by_key(|s| s.node_count())
        .expect("province has components");
    let mut group = c.benchmark_group("ablation_matching");
    group.sample_size(15);
    group.bench_with_input(
        BenchmarkId::new("tree_indexed", sub.node_count()),
        sub,
        |b, sub| {
            b.iter(|| black_box(tree_match(black_box(sub))));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("naive_all_pairs", sub.node_count()),
        sub,
        |b, sub| {
            b.iter(|| black_box(naive_match(black_box(sub))));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
