//! **Big-data scaling** — end-to-end cost (fusion + detection) as the
//! province grows.
//!
//! The paper motivates the method with national-scale volumes (31.9 M
//! taxpayers, a billion records a year); its future work points at
//! parallel graph processing.  This bench measures how the pipeline
//! scales with population size at fixed trading probability, serial vs
//! parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tpiin_bench::fixtures::province_with_trading;
use tpiin_core::{Detector, DetectorConfig};
use tpiin_fusion::fuse;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for scale in [0.25, 0.5, 1.0] {
        let registry = province_with_trading(scale, 0.01, 20170417);
        let (tpiin, _) = fuse(&registry).expect("generated registry fuses");
        let arcs = tpiin.graph.edge_count() as u64;
        group.throughput(Throughput::Elements(arcs));

        let serial = Detector::new(DetectorConfig {
            collect_groups: false,
            ..Default::default()
        });
        group.bench_with_input(
            BenchmarkId::new("detect_serial", scale),
            &tpiin,
            |b, tpiin| {
                b.iter(|| black_box(serial.detect(black_box(tpiin)).group_count()));
            },
        );

        let parallel = Detector::new(DetectorConfig {
            collect_groups: false,
            threads: 8,
            ..Default::default()
        });
        group.bench_with_input(
            BenchmarkId::new("detect_parallel8", scale),
            &tpiin,
            |b, tpiin| {
                b.iter(|| black_box(parallel.detect(black_box(tpiin)).group_count()));
            },
        );

        group.bench_with_input(BenchmarkId::new("fuse", scale), &registry, |b, registry| {
            b.iter(|| black_box(fuse(black_box(registry)).unwrap().1.tpiin_nodes));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
