//! Stage-level profiling helper for snapshot load paths.
//!
//! Builds the nation fixture at the given scale (default 0.5), encodes
//! it as both text and binary snapshots, and prints per-round decode
//! times plus the binary path's parse/materialize split.  Not a gated
//! benchmark — use it to see *where* load time goes when tuning;
//! `bench_serve` owns the recorded numbers.
//!
//! Usage: `cargo run --release -p tpiin-bench --example profile_load [SCALE]`

use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let tpiin = tpiin_bench::fixtures::nation_tpiin_fixture(scale, 20170417);
    let text = tpiin_io::snapshot::write_snapshot(&tpiin).into_bytes();
    let bin = tpiin_io::snapshot_bin::write_snapshot_bin(&tpiin);
    println!(
        "nodes {} edges {} | text {} B, bin {} B",
        tpiin.node_count(),
        tpiin.graph.edge_count(),
        text.len(),
        bin.len()
    );

    for _ in 0..5 {
        let start = Instant::now();
        let a = tpiin_io::snapshot::read_snapshot_bytes(&text).unwrap();
        let text_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let b = tpiin_io::snapshot_bin::read_snapshot_bin(&bin).unwrap();
        let bin_ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box((a.node_count(), b.node_count()));
        println!(
            "text {text_ms:.2} ms  bin {bin_ms:.2} ms  ratio {:.1}",
            text_ms / bin_ms
        );
    }

    // The binary path's two stages, timed back to back: section-table
    // parse + aligned copy, then Tpiin materialization.
    for _ in 0..3 {
        let start = Instant::now();
        let view = tpiin_io::snapshot_bin::SnapshotView::parse(&bin).unwrap();
        let parse_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let tp = view.materialize().unwrap();
        let mat_ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(tp.node_count());
        println!("parse {parse_ms:.3} ms  materialize {mat_ms:.3} ms");
    }
}
