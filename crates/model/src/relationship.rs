//! Source relationship records gathered from the external data sources.
//!
//! The paper's Fig. 4 names the sources: the household registration
//! database (kinship), CSRC disclosures (interlocking, directorships,
//! shareholding structure) and provincial tax offices (trading records).
//! Each record type below corresponds to one homogeneous network:
//!
//! * [`Interdependence`] -> `G1` (Person–Person, unidirectional);
//! * [`InfluenceRecord`] -> `G2` (Person→Company arcs);
//! * [`InvestmentRecord`] -> `GI`/`G3` (Company→Company arcs);
//! * [`TradingRecord`]   -> `G4` (Company→Company arcs).

use crate::ids::{CompanyId, PersonId};
use serde::{Deserialize, Serialize};

/// Why two persons are interdependent.
///
/// If both a kinship and an interlocking relationship exist between a pair
/// of persons, the paper keeps only one edge; [`crate::SourceRegistry`]
/// applies the same rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterdependenceKind {
    /// Family relationship (brown edges in Fig. 7).
    Kinship,
    /// Director interlocking / acting-in-concert agreement (yellow edges).
    Interlocking,
}

/// An undirected Person–Person interdependence edge of `G1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interdependence {
    /// One endpoint.
    pub a: PersonId,
    /// The other endpoint.
    pub b: PersonId,
    /// Which covert relationship backs the edge.
    pub kind: InterdependenceKind,
}

/// Subclass of a Person→Company influence arc of `G2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InfluenceKind {
    /// The person is the company's executive/managing director
    /// ("is-an-CEO-and-D-of").
    CeoAndDirectorOf,
    /// The person is the company's CEO ("is-CEO-of").
    CeoOf,
    /// The person is the company's chairman of the board ("is-CB-of").
    ChairmanOf,
    /// The person is a director of the company ("is-a-D-of").
    DirectorOf,
}

/// A Person→Company influence arc.
///
/// `is_legal_person` marks the unique legal-person link every company must
/// have; it is an attribute rather than a fifth [`InfluenceKind`] because
/// the legal-person role is always carried by one of the four position
/// subclasses (see [`crate::RoleSet::admissible_as_legal_person`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfluenceRecord {
    /// The influencing person.
    pub person: PersonId,
    /// The influenced company.
    pub company: CompanyId,
    /// Positional subclass of the influence.
    pub kind: InfluenceKind,
    /// Whether this person is the company's registered legal person.
    pub is_legal_person: bool,
}

/// A Company→Company major-shareholding arc of the investment graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InvestmentRecord {
    /// The investing company.
    pub investor: CompanyId,
    /// The owned company.
    pub investee: CompanyId,
    /// Fraction of shares held, in `(0, 1]`.  The paper only requires a
    /// *major* shareholding; the exact figure feeds the weighted-scoring
    /// extension.
    pub share: f64,
}

/// A Company→Company trading-relationship arc of `G4`.
///
/// A trading arc denotes that a trading relationship *exists* (the paper
/// calls it a transaction behaviour); it is not an individual transaction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TradingRecord {
    /// The selling company.
    pub seller: CompanyId,
    /// The buying company.
    pub buyer: CompanyId,
    /// Optional aggregate volume, used by the weighted-scoring extension.
    pub volume: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_construct() {
        let i = Interdependence {
            a: PersonId(0),
            b: PersonId(1),
            kind: InterdependenceKind::Kinship,
        };
        assert_eq!(i.kind, InterdependenceKind::Kinship);

        let inf = InfluenceRecord {
            person: PersonId(0),
            company: CompanyId(0),
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        };
        assert!(inf.is_legal_person);

        let inv = InvestmentRecord {
            investor: CompanyId(0),
            investee: CompanyId(1),
            share: 0.6,
        };
        assert!(inv.share > 0.5);

        let tr = TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(0),
            volume: 1e6,
        };
        assert_eq!(tr.seller, CompanyId(1));
    }
}
