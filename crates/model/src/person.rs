//! Natural persons appearing in the source data.

use crate::roles::RoleSet;
use serde::{Deserialize, Serialize};

/// A natural person involved in the operation or decision-making of at
/// least one company.
///
/// In the paper's terms this is a *Person* node of the un-contracted
/// network; its role set is the node's color subclass before reduction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Person {
    /// Human-readable label (e.g. `"L1"` for legal persons or `"B3"` for
    /// directors in the paper's figures).
    pub name: String,
    /// Union of all positions this person holds across companies.
    pub roles: RoleSet,
}

impl Person {
    /// Creates a person with the given label and roles.
    pub fn new(name: impl Into<String>, roles: RoleSet) -> Self {
        Person {
            name: name.into(),
            roles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::Role;

    #[test]
    fn construction() {
        let p = Person::new("L1", RoleSet::of(&[Role::Ceo]));
        assert_eq!(p.name, "L1");
        assert!(p.roles.contains(Role::Ceo));
    }
}
