//! A validated container for one province's source records.

use crate::company::Company;
use crate::error::ModelError;
use crate::ids::{CompanyId, PersonId};
use crate::person::Person;
use crate::relationship::{
    InfluenceRecord, Interdependence, InterdependenceKind, InvestmentRecord, TradingRecord,
};
use crate::roles::RoleSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// All source records for one fusion run: the input of the multi-network
/// fusion pipeline (`tpiin-fusion`).
///
/// The registry is append-only.  [`SourceRegistry::validate`] checks the
/// structural constraints the paper assumes — most importantly that every
/// company links to exactly one admissible legal person ("all *Company*
/// nodes must at least link with one *LP* node", Section 4.1).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SourceRegistry {
    persons: Vec<Person>,
    companies: Vec<Company>,
    interdependencies: Vec<Interdependence>,
    influences: Vec<InfluenceRecord>,
    investments: Vec<InvestmentRecord>,
    tradings: Vec<TradingRecord>,
    /// Statutory tax rate per company, parallel to `companies`.  Grown
    /// lazily: entries past the end mean [`crate::DEFAULT_TAX_RATE`].
    /// Absent from older serialized registries, hence the default.
    #[serde(default)]
    tax_rates: Vec<f64>,
}

impl SourceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with entity storage pre-reserved.
    /// Nation-scale generators know their totals up front; reserving
    /// avoids the doubling reallocations that would otherwise briefly
    /// hold two copies of multi-million-entry tables.
    pub fn with_capacity(persons: usize, companies: usize) -> Self {
        SourceRegistry {
            persons: Vec::with_capacity(persons),
            companies: Vec::with_capacity(companies),
            ..Self::default()
        }
    }

    /// Pre-reserves space for `additional` records of each relationship
    /// type (influences, investments, tradings).
    pub fn reserve_records(&mut self, influences: usize, investments: usize, tradings: usize) {
        self.influences.reserve(influences);
        self.investments.reserve(investments);
        self.tradings.reserve(tradings);
    }

    /// Registers a person; returns its id.
    pub fn add_person(&mut self, name: impl Into<String>, roles: RoleSet) -> PersonId {
        let id = PersonId(self.persons.len() as u32);
        self.persons.push(Person::new(name, roles));
        id
    }

    /// Registers a company; returns its id.
    pub fn add_company(&mut self, name: impl Into<String>) -> CompanyId {
        let id = CompanyId(self.companies.len() as u32);
        self.companies.push(Company::new(name));
        id
    }

    /// Records a company's statutory tax rate (used by the
    /// circular-trading miner's rate-differential scoring).  Companies
    /// without a recorded rate default to [`crate::DEFAULT_TAX_RATE`].
    pub fn set_company_tax_rate(&mut self, id: CompanyId, rate: f64) {
        if self.tax_rates.len() <= id.index() {
            self.tax_rates
                .resize(id.index() + 1, crate::DEFAULT_TAX_RATE);
        }
        self.tax_rates[id.index()] = rate;
    }

    /// A company's statutory tax rate ([`crate::DEFAULT_TAX_RATE`] when
    /// never set).
    pub fn company_tax_rate(&self, id: CompanyId) -> f64 {
        self.tax_rates
            .get(id.index())
            .copied()
            .unwrap_or(crate::DEFAULT_TAX_RATE)
    }

    /// The tax rate of every company, indexed by `CompanyId` — the side
    /// table the mining context carries.  `None` when no rate was ever
    /// recorded (every differential would be zero anyway).
    pub fn company_tax_rates(&self) -> Option<Vec<f64>> {
        if self.tax_rates.is_empty() {
            return None;
        }
        Some(
            (0..self.companies.len())
                .map(|i| self.company_tax_rate(CompanyId(i as u32)))
                .collect(),
        )
    }

    /// Records an interdependence edge between two persons.
    ///
    /// Following the paper ("if there exist both a kinship and an
    /// interlocking relationship between a pair of persons, we only keep
    /// one"), a duplicate edge over the same unordered pair is ignored and
    /// `false` is returned.
    pub fn add_interdependence(
        &mut self,
        a: PersonId,
        b: PersonId,
        kind: InterdependenceKind,
    ) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        let exists = self.interdependencies.iter().any(|i| {
            let k = if i.a <= i.b { (i.a, i.b) } else { (i.b, i.a) };
            k == key
        });
        if exists {
            return false;
        }
        self.interdependencies.push(Interdependence { a, b, kind });
        true
    }

    /// Records a Person→Company influence arc.
    pub fn add_influence(&mut self, record: InfluenceRecord) {
        self.influences.push(record);
    }

    /// Records a Company→Company investment arc.
    pub fn add_investment(&mut self, record: InvestmentRecord) {
        self.investments.push(record);
    }

    /// Records a Company→Company trading arc.
    pub fn add_trading(&mut self, record: TradingRecord) {
        self.tradings.push(record);
    }

    /// Absorbs all records of `other` into `self`, remapping ids past the
    /// existing entities and prefixing names with `prefix` (e.g. `"P3:"`).
    /// Used to assemble national-scale registries out of per-province
    /// extracts; the absorbed records stay disjoint from the existing
    /// ones, so validity is preserved.
    pub fn absorb(&mut self, other: &SourceRegistry, prefix: &str) {
        let person_offset = self.persons.len() as u32;
        let company_offset = self.companies.len() as u32;
        // Reserve every table up front: absorbing k provinces one after
        // another must not re-double megavector allocations mid-copy.
        self.persons.reserve(other.persons.len());
        self.companies.reserve(other.companies.len());
        self.interdependencies
            .reserve(other.interdependencies.len());
        self.influences.reserve(other.influences.len());
        self.investments.reserve(other.investments.len());
        self.tradings.reserve(other.tradings.len());
        // Exact-capacity name building: `format!` may over-allocate, and
        // at nation scale the slack would be held for the process
        // lifetime.
        let prefixed = |name: &str| {
            let mut s = String::with_capacity(prefix.len() + name.len());
            s.push_str(prefix);
            s.push_str(name);
            s
        };
        for p in &other.persons {
            self.persons.push(Person::new(prefixed(&p.name), p.roles));
        }
        for c in &other.companies {
            self.companies.push(Company::new(prefixed(&c.name)));
        }
        if !self.tax_rates.is_empty() || !other.tax_rates.is_empty() {
            self.tax_rates
                .resize(company_offset as usize, crate::DEFAULT_TAX_RATE);
            for i in 0..other.companies.len() {
                self.tax_rates
                    .push(other.company_tax_rate(CompanyId(i as u32)));
            }
        }
        let rp = |p: PersonId| PersonId(p.0 + person_offset);
        let rc = |c: CompanyId| CompanyId(c.0 + company_offset);
        for i in &other.interdependencies {
            self.interdependencies.push(Interdependence {
                a: rp(i.a),
                b: rp(i.b),
                kind: i.kind,
            });
        }
        for r in &other.influences {
            self.influences.push(InfluenceRecord {
                person: rp(r.person),
                company: rc(r.company),
                kind: r.kind,
                is_legal_person: r.is_legal_person,
            });
        }
        for r in &other.investments {
            self.investments.push(InvestmentRecord {
                investor: rc(r.investor),
                investee: rc(r.investee),
                share: r.share,
            });
        }
        for r in &other.tradings {
            self.tradings.push(TradingRecord {
                seller: rc(r.seller),
                buyer: rc(r.buyer),
                volume: r.volume,
            });
        }
    }

    /// Removes every trading record.  The evaluation sweep fuses one
    /// antecedent network with twenty different random trading networks;
    /// clearing trading records lets a registry be reused across settings.
    pub fn clear_trading(&mut self) {
        self.tradings.clear();
    }

    /// Removes the *first* influence arc `person → company`, preserving
    /// the order of the remaining records.  First-match semantics keep
    /// replay deterministic when duplicate arcs exist: fusion's
    /// first-wins dedup means the surviving record after removal is the
    /// same one a from-scratch build over the mutated registry would
    /// pick.  Returns whether a record was removed.
    pub fn remove_influence(&mut self, person: PersonId, company: CompanyId) -> bool {
        match self
            .influences
            .iter()
            .position(|r| r.person == person && r.company == company)
        {
            Some(i) => {
                self.influences.remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes the *first* investment arc `investor → investee`,
    /// preserving record order (see [`SourceRegistry::remove_influence`]
    /// for why first-match).  Returns whether a record was removed.
    pub fn remove_investment(&mut self, investor: CompanyId, investee: CompanyId) -> bool {
        match self
            .investments
            .iter()
            .position(|r| r.investor == investor && r.investee == investee)
        {
            Some(i) => {
                self.investments.remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes the *first* trading arc `seller → buyer`, preserving
    /// record order.  Returns whether a record was removed.
    pub fn remove_trading(&mut self, seller: CompanyId, buyer: CompanyId) -> bool {
        match self
            .tradings
            .iter()
            .position(|r| r.seller == seller && r.buyer == buyer)
        {
            Some(i) => {
                self.tradings.remove(i);
                true
            }
            None => false,
        }
    }

    /// Deregisters a company: drops every influence, investment, and
    /// trading record referencing it and shifts later company ids down by
    /// one, as if the company had never been registered.  Returns `false`
    /// (and changes nothing) when the id is out of range.
    pub fn remove_company(&mut self, id: CompanyId) -> bool {
        if id.index() >= self.companies.len() {
            return false;
        }
        self.companies.remove(id.index());
        if id.index() < self.tax_rates.len() {
            self.tax_rates.remove(id.index());
        }
        let shift = |c: CompanyId| if c > id { CompanyId(c.0 - 1) } else { c };
        self.influences.retain_mut(|r| {
            if r.company == id {
                return false;
            }
            r.company = shift(r.company);
            true
        });
        self.investments.retain_mut(|r| {
            if r.investor == id || r.investee == id {
                return false;
            }
            r.investor = shift(r.investor);
            r.investee = shift(r.investee);
            true
        });
        self.tradings.retain_mut(|r| {
            if r.seller == id || r.buyer == id {
                return false;
            }
            r.seller = shift(r.seller);
            r.buyer = shift(r.buyer);
            true
        });
        true
    }

    /// Deregisters a person: drops every interdependence edge and
    /// influence record referencing them and shifts later person ids down
    /// by one.  Removing a company's legal person leaves that company
    /// without an LP record — [`SourceRegistry::validate`] will flag it,
    /// so a removal batch must also deregister or re-staff the affected
    /// companies.  Returns `false` when the id is out of range.
    pub fn remove_person(&mut self, id: PersonId) -> bool {
        if id.index() >= self.persons.len() {
            return false;
        }
        self.persons.remove(id.index());
        let shift = |p: PersonId| if p > id { PersonId(p.0 - 1) } else { p };
        self.interdependencies.retain_mut(|e| {
            if e.a == id || e.b == id {
                return false;
            }
            e.a = shift(e.a);
            e.b = shift(e.b);
            true
        });
        self.influences.retain_mut(|r| {
            if r.person == id {
                return false;
            }
            r.person = shift(r.person);
            true
        });
        true
    }

    /// Number of registered persons.
    pub fn person_count(&self) -> usize {
        self.persons.len()
    }

    /// Number of registered companies.
    pub fn company_count(&self) -> usize {
        self.companies.len()
    }

    /// Borrow a person record.
    pub fn person(&self, id: PersonId) -> &Person {
        &self.persons[id.index()]
    }

    /// Borrow a company record.
    pub fn company(&self, id: CompanyId) -> &Company {
        &self.companies[id.index()]
    }

    /// Iterator over `(id, person)`.
    pub fn persons(&self) -> impl ExactSizeIterator<Item = (PersonId, &Person)> {
        self.persons
            .iter()
            .enumerate()
            .map(|(i, p)| (PersonId(i as u32), p))
    }

    /// Iterator over `(id, company)`.
    pub fn companies(&self) -> impl ExactSizeIterator<Item = (CompanyId, &Company)> {
        self.companies
            .iter()
            .enumerate()
            .map(|(i, c)| (CompanyId(i as u32), c))
    }

    /// All interdependence edges.
    pub fn interdependencies(&self) -> &[Interdependence] {
        &self.interdependencies
    }

    /// All influence arcs.
    pub fn influences(&self) -> &[InfluenceRecord] {
        &self.influences
    }

    /// All investment arcs.
    pub fn investments(&self) -> &[InvestmentRecord] {
        &self.investments
    }

    /// All trading arcs.
    pub fn tradings(&self) -> &[TradingRecord] {
        &self.tradings
    }

    /// Checks every structural constraint; returns all violations found
    /// (empty `Ok` on success):
    ///
    /// * record endpoints must reference registered persons/companies;
    /// * interdependence edges must join two distinct persons;
    /// * investment/trading arcs must join two distinct companies;
    /// * every company has exactly one legal-person influence arc, and the
    ///   designated person's role set admits the position;
    /// * investment shares lie in `(0, 1]`.
    ///
    /// The check is split per record type ([`validate_interdependencies`],
    /// [`validate_influences`], [`validate_investments`],
    /// [`validate_tradings`]) so the fusion front-end can run the four
    /// sweeps on separate threads; this method concatenates their error
    /// lists in that fixed order, so the report is the same either way.
    ///
    /// [`validate_interdependencies`]: SourceRegistry::validate_interdependencies
    /// [`validate_influences`]: SourceRegistry::validate_influences
    /// [`validate_investments`]: SourceRegistry::validate_investments
    /// [`validate_tradings`]: SourceRegistry::validate_tradings
    pub fn validate(&self) -> Result<(), Vec<ModelError>> {
        let mut errors = self.validate_interdependencies();
        errors.extend(self.validate_influences());
        errors.extend(self.validate_investments());
        errors.extend(self.validate_tradings());
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Violations among person–person interdependence edges only.
    pub fn validate_interdependencies(&self) -> Vec<ModelError> {
        let mut errors = Vec::new();
        let np = self.persons.len() as u32;
        for i in &self.interdependencies {
            for p in [i.a, i.b] {
                if p.0 >= np {
                    errors.push(ModelError::UnknownPerson(p));
                }
            }
            if i.a == i.b {
                errors.push(ModelError::SelfInterdependence(i.a));
            }
        }
        errors
    }

    /// Violations among influence arcs, including the legal-person
    /// constraints (exactly one admissible LP per company).
    pub fn validate_influences(&self) -> Vec<ModelError> {
        let mut errors = Vec::new();
        let np = self.persons.len() as u32;
        let nc = self.companies.len() as u32;
        let mut lp_of: Vec<Option<PersonId>> = vec![None; self.companies.len()];
        let mut multiple_reported: HashSet<CompanyId> = HashSet::new();
        for inf in &self.influences {
            if inf.person.0 >= np {
                errors.push(ModelError::UnknownPerson(inf.person));
                continue;
            }
            if inf.company.0 >= nc {
                errors.push(ModelError::UnknownCompany(inf.company));
                continue;
            }
            if inf.is_legal_person {
                let slot = &mut lp_of[inf.company.index()];
                if slot.is_some() {
                    if multiple_reported.insert(inf.company) {
                        errors.push(ModelError::MultipleLegalPersons(inf.company));
                    }
                } else {
                    *slot = Some(inf.person);
                    if !self.persons[inf.person.index()]
                        .roles
                        .admissible_as_legal_person()
                    {
                        errors.push(ModelError::InadmissibleLegalPerson {
                            company: inf.company,
                            person: inf.person,
                        });
                    }
                }
            }
        }
        for (i, slot) in lp_of.iter().enumerate() {
            if slot.is_none() {
                errors.push(ModelError::MissingLegalPerson(CompanyId(i as u32)));
            }
        }
        errors
    }

    /// Violations among company–company investment arcs only.
    pub fn validate_investments(&self) -> Vec<ModelError> {
        let mut errors = Vec::new();
        let nc = self.companies.len() as u32;
        for inv in &self.investments {
            for c in [inv.investor, inv.investee] {
                if c.0 >= nc {
                    errors.push(ModelError::UnknownCompany(c));
                }
            }
            if inv.investor == inv.investee {
                errors.push(ModelError::SelfCompanyArc(inv.investor));
            }
            if !(inv.share > 0.0 && inv.share <= 1.0) {
                errors.push(ModelError::InvalidShare {
                    investor: inv.investor,
                    investee: inv.investee,
                    share: inv.share,
                });
            }
        }
        errors
    }

    /// Violations among company–company trading arcs only.
    pub fn validate_tradings(&self) -> Vec<ModelError> {
        let mut errors = Vec::new();
        let nc = self.companies.len() as u32;
        for tr in &self.tradings {
            for c in [tr.seller, tr.buyer] {
                if c.0 >= nc {
                    errors.push(ModelError::UnknownCompany(c));
                }
            }
            if tr.seller == tr.buyer {
                errors.push(ModelError::SelfCompanyArc(tr.seller));
            }
        }
        errors
    }

    /// Replaces a person's role set.  Source adapters accumulate roles as
    /// board-roster rows arrive (one person can hold positions in many
    /// companies).
    pub fn set_person_roles(&mut self, person: PersonId, roles: crate::roles::RoleSet) {
        self.persons[person.index()].roles = roles;
    }

    /// Finds a company by exact name (linear scan; registries are
    /// append-only so callers needing many lookups should build their own
    /// index).
    pub fn company_by_name(&self, name: &str) -> Option<CompanyId> {
        self.companies
            .iter()
            .position(|c| c.name == name)
            .map(|i| CompanyId(i as u32))
    }

    /// Finds a person by exact name.
    pub fn person_by_name(&self, name: &str) -> Option<PersonId> {
        self.persons
            .iter()
            .position(|p| p.name == name)
            .map(|i| PersonId(i as u32))
    }

    /// Everything [`SourceRegistry::validate`] checks, plus role
    /// consistency: an influence record's positional subclass must be
    /// backed by the person's declared roles (a `is-CEO-of` arc from
    /// someone who holds no CEO position is a data-quality defect in the
    /// source extracts).  Shareholders may hold director seats (the
    /// paper's S -> D reduction).
    pub fn validate_strict(&self) -> Result<(), Vec<ModelError>> {
        let mut errors = match self.validate() {
            Ok(()) => Vec::new(),
            Err(e) => e,
        };
        for inf in &self.influences {
            let Some(person) = self.persons.get(inf.person.index()) else {
                continue; // already reported by validate()
            };
            if self.companies.get(inf.company.index()).is_none() {
                continue;
            }
            use crate::relationship::InfluenceKind::*;
            use crate::roles::Role;
            let roles = person.roles;
            let director_ok = roles.contains(Role::Director) || roles.contains(Role::Shareholder);
            let consistent = match inf.kind {
                CeoOf => roles.contains(Role::Ceo),
                ChairmanOf => roles.contains(Role::Chairman),
                DirectorOf => director_ok,
                CeoAndDirectorOf => roles.contains(Role::Ceo) && director_ok,
            };
            if !consistent {
                errors.push(ModelError::RoleMismatch {
                    person: inf.person,
                    company: inf.company,
                });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// The legal person of each company, if validation would assign one.
    /// Companies with zero or multiple legal-person records yield `None`.
    pub fn legal_persons(&self) -> Vec<Option<PersonId>> {
        let mut lp_of: Vec<Option<PersonId>> = vec![None; self.companies.len()];
        let mut ambiguous = vec![false; self.companies.len()];
        for inf in &self.influences {
            if inf.is_legal_person && inf.company.index() < lp_of.len() {
                let slot = &mut lp_of[inf.company.index()];
                if slot.is_some() {
                    ambiguous[inf.company.index()] = true;
                } else {
                    *slot = Some(inf.person);
                }
            }
        }
        for (slot, amb) in lp_of.iter_mut().zip(ambiguous) {
            if amb {
                *slot = None;
            }
        }
        lp_of
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::InfluenceKind;
    use crate::roles::Role;

    fn valid_registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let d1 = r.add_person("D1", RoleSet::of(&[Role::Director]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        r.add_influence(InfluenceRecord {
            person: l1,
            company: c1,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        r.add_influence(InfluenceRecord {
            person: l1,
            company: c2,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        r.add_influence(InfluenceRecord {
            person: d1,
            company: c2,
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c2,
            share: 0.6,
        });
        r.add_trading(TradingRecord {
            seller: c2,
            buyer: c1,
            volume: 100.0,
        });
        r
    }

    #[test]
    fn valid_registry_passes() {
        assert!(valid_registry().validate().is_ok());
    }

    #[test]
    fn duplicate_interdependence_pair_is_dropped() {
        let mut r = SourceRegistry::new();
        let a = r.add_person("a", RoleSet::of(&[Role::Director]));
        let b = r.add_person("b", RoleSet::of(&[Role::Director]));
        assert!(r.add_interdependence(a, b, InterdependenceKind::Kinship));
        // Same unordered pair, different kind: the paper keeps one edge.
        assert!(!r.add_interdependence(b, a, InterdependenceKind::Interlocking));
        assert_eq!(r.interdependencies().len(), 1);
        assert_eq!(r.interdependencies()[0].kind, InterdependenceKind::Kinship);
    }

    #[test]
    fn missing_legal_person_is_reported() {
        let mut r = SourceRegistry::new();
        r.add_company("C1");
        let errs = r.validate().unwrap_err();
        assert!(errs.contains(&ModelError::MissingLegalPerson(CompanyId(0))));
    }

    #[test]
    fn multiple_legal_persons_reported_once() {
        let mut r = valid_registry();
        let extra = r.add_person("L2", RoleSet::of(&[Role::Chairman]));
        r.add_influence(InfluenceRecord {
            person: extra,
            company: CompanyId(0),
            kind: InfluenceKind::ChairmanOf,
            is_legal_person: true,
        });
        r.add_influence(InfluenceRecord {
            person: extra,
            company: CompanyId(0),
            kind: InfluenceKind::ChairmanOf,
            is_legal_person: true,
        });
        let errs = r.validate().unwrap_err();
        let count = errs
            .iter()
            .filter(|e| matches!(e, ModelError::MultipleLegalPersons(c) if *c == CompanyId(0)))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn inadmissible_legal_person_rejected() {
        let mut r = SourceRegistry::new();
        let d = r.add_person("D", RoleSet::of(&[Role::Director]));
        let c = r.add_company("C");
        r.add_influence(InfluenceRecord {
            person: d,
            company: c,
            kind: InfluenceKind::DirectorOf,
            is_legal_person: true,
        });
        let errs = r.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::InadmissibleLegalPerson { .. })));
    }

    #[test]
    fn dangling_ids_and_self_arcs_reported() {
        let mut r = valid_registry();
        r.add_investment(InvestmentRecord {
            investor: CompanyId(9),
            investee: CompanyId(0),
            share: 0.5,
        });
        r.add_trading(TradingRecord {
            seller: CompanyId(0),
            buyer: CompanyId(0),
            volume: 1.0,
        });
        r.add_interdependence(PersonId(0), PersonId(0), InterdependenceKind::Kinship);
        let errs = r.validate().unwrap_err();
        assert!(errs.contains(&ModelError::UnknownCompany(CompanyId(9))));
        assert!(errs.contains(&ModelError::SelfCompanyArc(CompanyId(0))));
        assert!(errs.contains(&ModelError::SelfInterdependence(PersonId(0))));
    }

    #[test]
    fn per_type_validators_concatenate_to_validate() {
        let mut r = valid_registry();
        r.add_interdependence(PersonId(0), PersonId(0), InterdependenceKind::Kinship);
        r.add_investment(InvestmentRecord {
            investor: CompanyId(9),
            investee: CompanyId(0),
            share: 2.0,
        });
        r.add_trading(TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(1),
            volume: 1.0,
        });
        let mut split = r.validate_interdependencies();
        split.extend(r.validate_influences());
        split.extend(r.validate_investments());
        split.extend(r.validate_tradings());
        assert_eq!(r.validate().unwrap_err(), split);
    }

    #[test]
    fn invalid_share_reported() {
        let mut r = valid_registry();
        r.add_investment(InvestmentRecord {
            investor: CompanyId(0),
            investee: CompanyId(1),
            share: 0.0,
        });
        let errs = r.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::InvalidShare { .. })));
    }

    #[test]
    fn strict_validation_checks_role_consistency() {
        let mut r = valid_registry();
        assert!(
            r.validate_strict().is_ok(),
            "valid registry passes strict checks"
        );
        // A pure-CEO person recorded as chairman: strict failure, plain
        // validation still passes.
        r.add_influence(InfluenceRecord {
            person: PersonId(0), // roles: {CEO}
            company: CompanyId(1),
            kind: InfluenceKind::ChairmanOf,
            is_legal_person: false,
        });
        assert!(r.validate().is_ok());
        let errs = r.validate_strict().unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, ModelError::RoleMismatch { person, .. } if *person == PersonId(0))
        ));
    }

    #[test]
    fn strict_validation_accepts_shareholder_directors() {
        let mut r = SourceRegistry::new();
        let s = r.add_person("S", RoleSet::of(&[Role::Shareholder, Role::Ceo]));
        let c = r.add_company("C");
        r.add_influence(InfluenceRecord {
            person: s,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        // Shareholder acting as a director (the S -> D reduction).
        r.add_influence(InfluenceRecord {
            person: s,
            company: c,
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
        assert!(r.validate_strict().is_ok());
    }

    #[test]
    fn legal_persons_lookup() {
        let r = valid_registry();
        let lps = r.legal_persons();
        assert_eq!(lps, vec![Some(PersonId(0)), Some(PersonId(0))]);
    }

    #[test]
    fn set_person_roles_replaces() {
        let mut r = valid_registry();
        r.set_person_roles(PersonId(1), RoleSet::of(&[Role::Chairman]));
        assert!(r.person(PersonId(1)).roles.contains(Role::Chairman));
        assert!(!r.person(PersonId(1)).roles.contains(Role::Director));
    }

    #[test]
    fn lookup_by_name() {
        let r = valid_registry();
        assert_eq!(r.company_by_name("C2"), Some(CompanyId(1)));
        assert_eq!(r.person_by_name("L1"), Some(PersonId(0)));
        assert_eq!(r.company_by_name("nope"), None);
        assert_eq!(r.person_by_name(""), None);
    }

    #[test]
    fn absorb_remaps_and_prefixes() {
        let mut a = valid_registry();
        let b = valid_registry();
        let (p0, c0) = (a.person_count(), a.company_count());
        a.absorb(&b, "X:");
        assert_eq!(a.person_count(), 2 * p0);
        assert_eq!(a.company_count(), 2 * c0);
        assert!(a.validate().is_ok(), "absorbed registry stays valid");
        assert_eq!(a.person(PersonId(p0 as u32)).name, "X:L1");
        assert_eq!(a.company(CompanyId(c0 as u32)).name, "X:C1");
        // The absorbed investment references the remapped companies.
        let inv = a.investments().last().unwrap();
        assert_eq!(inv.investor, CompanyId(c0 as u32));
        assert_eq!(inv.investee, CompanyId(c0 as u32 + 1));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut r = SourceRegistry::with_capacity(10, 10);
        r.reserve_records(5, 5, 5);
        let p = r.add_person("P", RoleSet::of(&[Role::Ceo]));
        let c = r.add_company("C");
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        assert!(r.validate().is_ok());
        assert_eq!(r.person_count(), 1);
        assert_eq!(r.company_count(), 1);
    }

    #[test]
    fn clear_trading_resets_only_trading() {
        let mut r = valid_registry();
        assert_eq!(r.tradings().len(), 1);
        r.clear_trading();
        assert!(r.tradings().is_empty());
        assert_eq!(r.investments().len(), 1);
    }

    #[test]
    fn record_removal_is_first_match_and_order_preserving() {
        let mut r = valid_registry();
        // Duplicate the investment arc with a different share; removal
        // must take the first and keep the second.
        r.add_investment(InvestmentRecord {
            investor: CompanyId(0),
            investee: CompanyId(1),
            share: 0.3,
        });
        assert!(r.remove_investment(CompanyId(0), CompanyId(1)));
        assert_eq!(r.investments().len(), 1);
        assert_eq!(r.investments()[0].share, 0.3);
        assert!(!r.remove_investment(CompanyId(1), CompanyId(0)));
        assert!(r.remove_trading(CompanyId(1), CompanyId(0)));
        assert!(r.tradings().is_empty());
        // Removing D1's (non-LP) directorship keeps the registry valid.
        assert!(r.remove_influence(PersonId(1), CompanyId(1)));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn remove_company_cascades_and_renumbers() {
        let mut r = valid_registry();
        assert!(!r.remove_company(CompanyId(9)));
        assert!(r.remove_company(CompanyId(0)));
        assert_eq!(r.company_count(), 1);
        // C2 became C0; its records were remapped, C1's were dropped.
        assert_eq!(r.investments().len(), 0);
        assert_eq!(r.tradings().len(), 0);
        assert_eq!(r.influences().len(), 2);
        assert!(r.influences().iter().all(|i| i.company == CompanyId(0)));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn remove_person_cascades_and_renumbers() {
        let mut r = valid_registry();
        r.add_interdependence(PersonId(0), PersonId(1), InterdependenceKind::Kinship);
        assert!(r.remove_person(PersonId(1)));
        assert_eq!(r.person_count(), 1);
        assert!(r.interdependencies().is_empty());
        assert_eq!(r.influences().len(), 2, "only D1's directorship dropped");
        assert!(r.validate().is_ok());
        // Removing the legal person leaves both companies LP-less.
        assert!(r.remove_person(PersonId(0)));
        let errs = r.validate().unwrap_err();
        assert_eq!(
            errs.iter()
                .filter(|e| matches!(e, ModelError::MissingLegalPerson(_)))
                .count(),
            2
        );
    }
}
