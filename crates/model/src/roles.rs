//! Person positions (roles) and the paper's subclass reduction.
//!
//! A person may simultaneously hold four positions: Chairman of the Board
//! (CB), Chief Executive Officer (CEO), Shareholder (S) and Director (D).
//! The paper observes that, for the purpose of influence analysis, the
//! shareholder position can be folded into the director position (a
//! shareholder who takes part in monitoring and decision-making acts as a
//! director), reducing the fifteen non-empty CB/CEO/D/S combinations to
//! seven CB/CEO/D combinations.  It further restricts which combinations a
//! company's *legal person* may hold: a legal person must be a CB, or an
//! executive/managing director (CEO and D), or a CEO — i.e. any reduced
//! combination except "plain director" and "no position".

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single position a person can hold in a company.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Chairman of the board.
    Chairman,
    /// Chief executive officer.
    Ceo,
    /// Director (board member).
    Director,
    /// Shareholder.
    Shareholder,
}

impl Role {
    const ALL: [Role; 4] = [Role::Chairman, Role::Ceo, Role::Director, Role::Shareholder];

    fn bit(self) -> u8 {
        match self {
            Role::Chairman => 0b0001,
            Role::Ceo => 0b0010,
            Role::Director => 0b0100,
            Role::Shareholder => 0b1000,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Chairman => "CB",
            Role::Ceo => "CEO",
            Role::Director => "D",
            Role::Shareholder => "S",
        })
    }
}

/// A set of positions held by one person (the "color subclass" of a Person
/// node before network fusion).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoleSet(u8);

impl RoleSet {
    /// The empty role set.
    pub const EMPTY: RoleSet = RoleSet(0);

    /// Builds a set from individual roles.
    pub fn of(roles: &[Role]) -> Self {
        let mut s = RoleSet::EMPTY;
        for &r in roles {
            s = s.with(r);
        }
        s
    }

    /// Returns this set with `role` added.
    #[must_use]
    pub fn with(self, role: Role) -> Self {
        RoleSet(self.0 | role.bit())
    }

    /// Whether `role` is in the set.
    pub fn contains(self, role: Role) -> bool {
        self.0 & role.bit() != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of roles in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the roles in the set in the fixed order CB, CEO, D, S.
    pub fn iter(self) -> impl Iterator<Item = Role> {
        Role::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// The paper's 15 → 7 subclass reduction: the shareholder position is
    /// folded into the director position, leaving only CB/CEO/D bits.
    ///
    /// A shareholder participating in monitoring and decision-making acts
    /// as a director (realistic scenarios ① and ② in Section 4.1), so a
    /// set containing S maps to the same set with S replaced by D.
    ///
    /// # Example
    ///
    /// ```
    /// use tpiin_model::{Role, RoleSet};
    /// let s = RoleSet::of(&[Role::Shareholder, Role::Ceo]);
    /// assert_eq!(s.reduce(), RoleSet::of(&[Role::Director, Role::Ceo]));
    /// ```
    #[must_use]
    pub fn reduce(self) -> Self {
        if self.contains(Role::Shareholder) {
            RoleSet(self.0 & !Role::Shareholder.bit()).with(Role::Director)
        } else {
            self
        }
    }

    /// Whether a person with this (un-reduced) role set may serve as a
    /// company's **legal person** under the paper's reading of the Company
    /// Act of China: the reduced set must be non-empty and must not be the
    /// bare `{D}` — i.e. one of `{CB,CEO,D}`, `{CEO,D}`, `{CEO,CB}`,
    /// `{D,CB}`, `{CB}`, `{CEO}`.
    pub fn admissible_as_legal_person(self) -> bool {
        let reduced = self.reduce();
        !reduced.is_empty() && reduced != RoleSet::of(&[Role::Director])
    }

    /// All seven non-empty reduced subclasses, in a fixed order.  Useful
    /// for generators and reporting.
    pub fn reduced_subclasses() -> [RoleSet; 7] {
        use Role::*;
        [
            RoleSet::of(&[Ceo, Director, Chairman]),
            RoleSet::of(&[Ceo, Director]),
            RoleSet::of(&[Ceo, Chairman]),
            RoleSet::of(&[Director, Chairman]),
            RoleSet::of(&[Chairman]),
            RoleSet::of(&[Director]),
            RoleSet::of(&[Ceo]),
        ]
    }
}

impl fmt::Debug for RoleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("{}");
        }
        let names: Vec<String> = self.iter().map(|r| r.to_string()).collect();
        write!(f, "{{{}}}", names.join(","))
    }
}

impl fmt::Display for RoleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Role::*;

    #[test]
    fn construction_and_membership() {
        let s = RoleSet::of(&[Ceo, Shareholder]);
        assert!(s.contains(Ceo));
        assert!(s.contains(Shareholder));
        assert!(!s.contains(Chairman));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(RoleSet::EMPTY.is_empty());
    }

    #[test]
    fn there_are_fifteen_nonempty_unreduced_subclasses() {
        // The paper: "there are fifteen possible disjoint subclasses of
        // colors for Person nodes".
        let mut distinct = std::collections::HashSet::new();
        for bits in 1u8..16 {
            distinct.insert(RoleSet(bits));
        }
        assert_eq!(distinct.len(), 15);
    }

    #[test]
    fn reduction_folds_shareholder_into_director() {
        assert_eq!(
            RoleSet::of(&[Shareholder]).reduce(),
            RoleSet::of(&[Director])
        );
        assert_eq!(
            RoleSet::of(&[Shareholder, Ceo]).reduce(),
            RoleSet::of(&[Director, Ceo])
        );
        assert_eq!(
            RoleSet::of(&[Shareholder, Director]).reduce(),
            RoleSet::of(&[Director])
        );
        // Sets without S are untouched.
        let s = RoleSet::of(&[Chairman, Ceo]);
        assert_eq!(s.reduce(), s);
    }

    #[test]
    fn reduction_maps_fifteen_subclasses_onto_seven() {
        let mut reduced = std::collections::HashSet::new();
        for bits in 1u8..16 {
            reduced.insert(RoleSet(bits).reduce());
        }
        assert_eq!(reduced.len(), 7, "the paper's 15 -> 7 reduction");
        for class in RoleSet::reduced_subclasses() {
            assert!(reduced.contains(&class));
        }
    }

    #[test]
    fn legal_person_admissibility_matches_the_six_listed_subclasses() {
        // Admissible: {CB,CEO,D}, {CEO,D}, {CEO,CB}, {D,CB}, {CB}, {CEO}.
        assert!(RoleSet::of(&[Chairman, Ceo, Director]).admissible_as_legal_person());
        assert!(RoleSet::of(&[Ceo, Director]).admissible_as_legal_person());
        assert!(RoleSet::of(&[Ceo, Chairman]).admissible_as_legal_person());
        assert!(RoleSet::of(&[Director, Chairman]).admissible_as_legal_person());
        assert!(RoleSet::of(&[Chairman]).admissible_as_legal_person());
        assert!(RoleSet::of(&[Ceo]).admissible_as_legal_person());
        // Not admissible: bare director and empty.
        assert!(!RoleSet::of(&[Director]).admissible_as_legal_person());
        assert!(!RoleSet::EMPTY.admissible_as_legal_person());
        // A bare shareholder reduces to bare director: not admissible.
        assert!(!RoleSet::of(&[Shareholder]).admissible_as_legal_person());
        // An executive-director shareholder reduces to {CEO,D}: admissible.
        assert!(RoleSet::of(&[Shareholder, Ceo]).admissible_as_legal_person());
    }

    #[test]
    fn debug_rendering_is_ordered() {
        let s = RoleSet::of(&[Shareholder, Chairman, Director]);
        assert_eq!(format!("{s:?}"), "{CB,D,S}");
        assert_eq!(format!("{:?}", RoleSet::EMPTY), "{}");
    }

    #[test]
    fn iter_yields_each_role_once() {
        let s = RoleSet::of(&[Ceo, Ceo, Director]);
        let roles: Vec<_> = s.iter().collect();
        assert_eq!(roles, vec![Ceo, Director]);
    }
}
