//! Arena-backed string interning for entity names.
//!
//! Source extracts reference taxpayers by name; ingest has to map every
//! occurrence of a name onto one dense id.  A `HashMap<String, Id>` does
//! that but stores every key twice (once in the map, once in the entity
//! record) and scatters small allocations across the heap.  [`Interner`]
//! stores all distinct names back to back in one arena `String` and
//! resolves lookups through an open-addressing index of `u32` slots, so
//! interning `n` names costs one growing buffer plus `2n` table words —
//! no per-name allocation at all.
//!
//! Symbols are handed out densely in first-intern order, which makes
//! [`Symbol::index`] directly usable as a record index: the ingest
//! adapters rely on `symbol.index() == entity id` because every
//! first-seen name immediately registers the entity.

use std::fmt;

/// A dense handle to an interned string.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Dense index of this symbol (0-based, first-intern order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

const EMPTY_SLOT: u32 = u32::MAX;

/// FNV-1a; names are short, so a simple multiplicative hash beats SipHash
/// setup cost and keeps the module dependency-free.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An arena-backed string interner with `u32` symbols.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    /// All interned strings, concatenated.
    arena: String,
    /// Byte range of each symbol inside the arena.
    spans: Vec<(u32, u32)>,
    /// Open-addressing table of symbol indices; [`EMPTY_SLOT`] marks a
    /// free slot.  Length is always a power of two.
    slots: Vec<u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner sized for roughly `names` distinct strings of
    /// `mean_len` bytes each.
    pub fn with_capacity(names: usize, mean_len: usize) -> Self {
        let table = (names * 2).next_power_of_two().max(16);
        Interner {
            arena: String::with_capacity(names * mean_len),
            spans: Vec::with_capacity(names),
            slots: vec![EMPTY_SLOT; table],
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes held in the arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Interns `name`, returning its symbol; repeated calls with equal
    /// strings return the same symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if self.slots.len() < (self.spans.len() + 1) * 2 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut slot = (fnv1a(name.as_bytes()) as usize) & mask;
        loop {
            let entry = self.slots[slot];
            if entry == EMPTY_SLOT {
                let start = self.arena.len() as u32;
                self.arena.push_str(name);
                let symbol = Symbol(self.spans.len() as u32);
                self.spans.push((start, self.arena.len() as u32));
                self.slots[slot] = symbol.0;
                return symbol;
            }
            if self.resolve(Symbol(entry)) == name {
                return Symbol(entry);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Looks `name` up without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = (fnv1a(name.as_bytes()) as usize) & mask;
        loop {
            let entry = self.slots[slot];
            if entry == EMPTY_SLOT {
                return None;
            }
            if self.resolve(Symbol(entry)) == name {
                return Some(Symbol(entry));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The string behind `symbol`.
    ///
    /// # Panics
    /// Panics if `symbol` was not produced by this interner.
    pub fn resolve(&self, symbol: Symbol) -> &str {
        let (start, end) = self.spans[symbol.index()];
        &self.arena[start as usize..end as usize]
    }

    /// Iterator over `(symbol, string)` in first-intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, &(start, end))| (Symbol(i as u32), &self.arena[start as usize..end as usize]))
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        let mask = new_len - 1;
        let mut slots = vec![EMPTY_SLOT; new_len];
        for (i, &(start, end)) in self.spans.iter().enumerate() {
            let name = &self.arena[start as usize..end as usize];
            let mut slot = (fnv1a(name.as_bytes()) as usize) & mask;
            while slots[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            slots[slot] = i as u32;
        }
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let x = i.intern("x");
        assert_eq!(i.get("x"), Some(x));
        assert_eq!(i.get("y"), None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn survives_growth_past_initial_table() {
        let mut i = Interner::with_capacity(4, 8);
        let symbols: Vec<Symbol> = (0..1000).map(|k| i.intern(&format!("name-{k}"))).collect();
        assert_eq!(i.len(), 1000);
        for (k, &s) in symbols.iter().enumerate() {
            assert_eq!(s, Symbol(k as u32), "symbols stay dense");
            assert_eq!(i.resolve(s), format!("name-{k}"));
            assert_eq!(i.get(&format!("name-{k}")), Some(s));
        }
    }

    #[test]
    fn empty_string_and_unicode_round_trip() {
        let mut i = Interner::new();
        let empty = i.intern("");
        let han = i.intern("税务局");
        assert_eq!(i.resolve(empty), "");
        assert_eq!(i.resolve(han), "税务局");
        assert_eq!(i.intern("税务局"), han);
    }

    #[test]
    fn iter_yields_first_intern_order() {
        let mut i = Interner::new();
        i.intern("b");
        i.intern("a");
        i.intern("b");
        let names: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(names, ["b", "a"]);
    }

    #[test]
    fn arena_is_one_buffer() {
        let mut i = Interner::new();
        i.intern("ab");
        i.intern("cd");
        assert_eq!(i.arena_bytes(), 4, "no per-name allocation overhead");
    }
}
