//! Typed registry mutations: the delta vocabulary of the streaming
//! ingest path.
//!
//! The paper's deployment story assumes a live CTAIS feed: new
//! companies register, directors change, shareholding structures move,
//! and trading relationships appear daily.  A [`Mutation`] names one
//! such change against a [`SourceRegistry`]; a [`MutationBatch`] groups
//! the mutations that arrive together (one extract drop, one ingest
//! request) and applies them atomically in order.
//!
//! Mutations are *replayable*: applying the same batch sequence to equal
//! registries yields equal registries, which is what lets the delta
//! engine's differential tests compare an incrementally maintained
//! TPIIN against a from-scratch fuse of the mutated registry.

use crate::error::ModelError;
use crate::ids::{CompanyId, PersonId};
use crate::registry::SourceRegistry;
use crate::relationship::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, TradingRecord,
};
use crate::roles::RoleSet;
use serde::{Deserialize, Serialize};

/// One registry change.  Entity ids follow the registry's sequential
/// allocation: `AddPerson`/`AddCompany` assign the next free id, so a
/// batch may reference entities it creates earlier in the same batch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Register a new person (takes the next [`PersonId`]).
    AddPerson {
        /// Display name.
        name: String,
        /// Position bitset.
        roles: RoleSet,
    },
    /// Register a new company (takes the next [`CompanyId`]) together
    /// with its mandatory legal-person influence arc, so a single-entry
    /// batch already satisfies the exactly-one-LP constraint.
    AddCompany {
        /// Display name.
        name: String,
        /// The registered legal person (must admit the position).
        legal_person: PersonId,
        /// Positional subclass of the legal-person arc.
        kind: InfluenceKind,
    },
    /// Add a person–person interdependence edge (kinship/interlocking).
    /// Duplicate unordered pairs are dropped, as the registry does.
    AddInterdependence {
        /// One endpoint.
        a: PersonId,
        /// The other endpoint.
        b: PersonId,
        /// Which covert relationship backs the edge.
        kind: InterdependenceKind,
    },
    /// Add a Person→Company influence arc (a directorship appointment).
    AddInfluence(InfluenceRecord),
    /// Remove the first influence arc `person → company` (a resignation).
    RemoveInfluence {
        /// The influencing person.
        person: PersonId,
        /// The influenced company.
        company: CompanyId,
    },
    /// Add a Company→Company investment arc.
    AddInvestment(InvestmentRecord),
    /// Remove the first investment arc `investor → investee` (a
    /// divestment).
    RemoveInvestment {
        /// The investing company.
        investor: CompanyId,
        /// The owned company.
        investee: CompanyId,
    },
    /// Add a Company→Company trading arc.
    AddTrading(TradingRecord),
    /// Remove the first trading arc `seller → buyer`.
    RemoveTrading {
        /// The selling company.
        seller: CompanyId,
        /// The buying company.
        buyer: CompanyId,
    },
    /// Record a company's statutory tax rate.
    SetTaxRate {
        /// The company.
        company: CompanyId,
        /// The statutory rate.
        rate: f64,
    },
    /// Deregister a company: every record referencing it is dropped and
    /// later company ids shift down by one.
    RemoveCompany {
        /// The company to deregister.
        company: CompanyId,
    },
    /// Deregister a person: every record referencing them is dropped and
    /// later person ids shift down by one.
    RemovePerson {
        /// The person to deregister.
        person: PersonId,
    },
}

impl Mutation {
    /// Whether this mutation only *appends trading arcs* — the cheap,
    /// antecedent-preserving class the delta engine patches without any
    /// re-contraction.
    pub fn is_trading_append(&self) -> bool {
        matches!(self, Mutation::AddTrading(_))
    }

    /// Whether this mutation registers a company or appends a trading
    /// arc — the two additive shapes that leave every *existing* entity
    /// id (and thus every existing TPIIN node id) untouched.  New
    /// persons don't qualify: the fused network numbers all
    /// person-syndicate nodes before company nodes, so adding a person
    /// renumbers every company node.
    pub fn is_company_append(&self) -> bool {
        matches!(self, Mutation::AddCompany { .. } | Mutation::AddTrading(_))
    }

    /// Whether this mutation renumbers entity ids (company/person
    /// removal) — the class no bounded incremental path can absorb.
    pub fn renumbers_ids(&self) -> bool {
        matches!(
            self,
            Mutation::RemoveCompany { .. } | Mutation::RemovePerson { .. }
        )
    }

    /// Applies the mutation to `registry`.  Additions with out-of-range
    /// endpoint ids fail without touching the registry; removals that
    /// match no record are no-ops reported as `Ok(false)`.  `Ok(true)`
    /// means the registry changed.
    pub fn apply(&self, registry: &mut SourceRegistry) -> Result<bool, ModelError> {
        let np = registry.person_count() as u32;
        let nc = registry.company_count() as u32;
        let person_ok = |p: PersonId| {
            if p.0 < np {
                Ok(())
            } else {
                Err(ModelError::UnknownPerson(p))
            }
        };
        let company_ok = |c: CompanyId| {
            if c.0 < nc {
                Ok(())
            } else {
                Err(ModelError::UnknownCompany(c))
            }
        };
        match self {
            Mutation::AddPerson { name, roles } => {
                registry.add_person(name.clone(), *roles);
                Ok(true)
            }
            Mutation::AddCompany {
                name,
                legal_person,
                kind,
            } => {
                person_ok(*legal_person)?;
                let company = registry.add_company(name.clone());
                registry.add_influence(InfluenceRecord {
                    person: *legal_person,
                    company,
                    kind: *kind,
                    is_legal_person: true,
                });
                Ok(true)
            }
            Mutation::AddInterdependence { a, b, kind } => {
                person_ok(*a)?;
                person_ok(*b)?;
                if a == b {
                    return Err(ModelError::SelfInterdependence(*a));
                }
                Ok(registry.add_interdependence(*a, *b, *kind))
            }
            Mutation::AddInfluence(record) => {
                person_ok(record.person)?;
                company_ok(record.company)?;
                registry.add_influence(*record);
                Ok(true)
            }
            Mutation::RemoveInfluence { person, company } => {
                Ok(registry.remove_influence(*person, *company))
            }
            Mutation::AddInvestment(record) => {
                company_ok(record.investor)?;
                company_ok(record.investee)?;
                if record.investor == record.investee {
                    return Err(ModelError::SelfCompanyArc(record.investor));
                }
                registry.add_investment(*record);
                Ok(true)
            }
            Mutation::RemoveInvestment { investor, investee } => {
                Ok(registry.remove_investment(*investor, *investee))
            }
            Mutation::AddTrading(record) => {
                company_ok(record.seller)?;
                company_ok(record.buyer)?;
                if record.seller == record.buyer {
                    return Err(ModelError::SelfCompanyArc(record.seller));
                }
                registry.add_trading(*record);
                Ok(true)
            }
            Mutation::RemoveTrading { seller, buyer } => {
                Ok(registry.remove_trading(*seller, *buyer))
            }
            Mutation::SetTaxRate { company, rate } => {
                company_ok(*company)?;
                registry.set_company_tax_rate(*company, *rate);
                Ok(true)
            }
            Mutation::RemoveCompany { company } => Ok(registry.remove_company(*company)),
            Mutation::RemovePerson { person } => Ok(registry.remove_person(*person)),
        }
    }
}

/// The mutations that arrive together: one ingest request, one extract
/// drop.  Applied in order; the batch is the unit of atomicity and of
/// epoch advancement in the serving layer.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MutationBatch {
    /// The mutations, in arrival order.
    pub mutations: Vec<Mutation>,
}

impl MutationBatch {
    /// A batch over the given mutations.
    pub fn new(mutations: Vec<Mutation>) -> MutationBatch {
        MutationBatch { mutations }
    }

    /// A batch that appends the given trading records — the shape the
    /// legacy `POST /ingest` records body maps onto.
    pub fn trading(records: impl IntoIterator<Item = TradingRecord>) -> MutationBatch {
        MutationBatch {
            mutations: records.into_iter().map(Mutation::AddTrading).collect(),
        }
    }

    /// Whether every mutation is a trading-arc append (the
    /// antecedent-preserving fast path).
    pub fn is_trading_only(&self) -> bool {
        self.mutations.iter().all(Mutation::is_trading_append)
    }

    /// Whether the batch registers companies (and optionally trades)
    /// without adding persons or removing anything: every mutation is
    /// [`Mutation::AddCompany`] or [`Mutation::AddTrading`], with at
    /// least one registration (pure trading batches have their own,
    /// cheaper classification).  This is the "new shells under a known
    /// controller" ingest shape, and the strongest structural guarantee
    /// a registry batch can offer: existing node ids survive verbatim.
    pub fn is_company_append(&self) -> bool {
        self.mutations.iter().all(Mutation::is_company_append)
            && self
                .mutations
                .iter()
                .any(|m| matches!(m, Mutation::AddCompany { .. }))
    }

    /// Whether any mutation renumbers entity ids.
    pub fn renumbers_ids(&self) -> bool {
        self.mutations.iter().any(Mutation::renumbers_ids)
    }

    /// Applies every mutation in order to `registry`; stops at the first
    /// failure.  Returns how many mutations *changed* the registry
    /// (no-op removals don't count).
    ///
    /// On `Err` the registry may hold a prefix of the batch — callers
    /// wanting atomicity apply to a clone and swap on success, which is
    /// exactly what the delta engine does.
    pub fn apply_to_registry(&self, registry: &mut SourceRegistry) -> Result<usize, ModelError> {
        let mut changed = 0;
        for mutation in &self.mutations {
            if mutation.apply(registry)? {
                changed += 1;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::Role;

    fn seeded() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        for (p, c) in [(l1, "C1"), (l2, "C2")] {
            let company = r.add_company(c);
            r.add_influence(InfluenceRecord {
                person: p,
                company,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_trading(TradingRecord {
            seller: CompanyId(0),
            buyer: CompanyId(1),
            volume: 10.0,
        });
        r
    }

    #[test]
    fn batch_grows_a_company_and_its_arcs() {
        let mut r = seeded();
        let batch = MutationBatch::new(vec![
            Mutation::AddPerson {
                name: "L3".into(),
                roles: RoleSet::of(&[Role::Ceo]),
            },
            Mutation::AddCompany {
                name: "C3".into(),
                legal_person: PersonId(2),
                kind: InfluenceKind::CeoOf,
            },
            Mutation::AddInterdependence {
                a: PersonId(0),
                b: PersonId(2),
                kind: InterdependenceKind::Kinship,
            },
            Mutation::AddInvestment(InvestmentRecord {
                investor: CompanyId(2),
                investee: CompanyId(0),
                share: 0.7,
            }),
            Mutation::AddTrading(TradingRecord {
                seller: CompanyId(2),
                buyer: CompanyId(1),
                volume: 5.0,
            }),
        ]);
        assert!(!batch.is_trading_only());
        assert!(!batch.renumbers_ids());
        assert_eq!(batch.apply_to_registry(&mut r).unwrap(), 5);
        assert_eq!(r.person_count(), 3);
        assert_eq!(r.company_count(), 3);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn trading_batch_is_the_fast_class() {
        let batch = MutationBatch::trading([TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(0),
            volume: 2.0,
        }]);
        assert!(batch.is_trading_only());
        let mut r = seeded();
        assert_eq!(batch.apply_to_registry(&mut r).unwrap(), 1);
        assert_eq!(r.tradings().len(), 2);
    }

    #[test]
    fn company_append_batch_is_the_id_stable_class() {
        let registration = Mutation::AddCompany {
            name: "C3".into(),
            legal_person: PersonId(0),
            kind: InfluenceKind::CeoOf,
        };
        let trade = Mutation::AddTrading(TradingRecord {
            seller: CompanyId(0),
            buyer: CompanyId(1),
            volume: 2.0,
        });
        let batch = MutationBatch::new(vec![registration.clone(), trade.clone()]);
        assert!(batch.is_company_append());
        assert!(!batch.is_trading_only());
        // Pure trading is its own class, not a degenerate company append.
        assert!(!MutationBatch::new(vec![trade]).is_company_append());
        // A new person renumbers company nodes: excluded.
        let with_person = MutationBatch::new(vec![
            Mutation::AddPerson {
                name: "P".into(),
                roles: RoleSet::of(&[Role::Ceo]),
            },
            registration,
        ]);
        assert!(!with_person.is_company_append());
    }

    #[test]
    fn out_of_range_additions_fail_cleanly() {
        let mut r = seeded();
        let bad = Mutation::AddTrading(TradingRecord {
            seller: CompanyId(9),
            buyer: CompanyId(0),
            volume: 1.0,
        });
        assert_eq!(
            bad.apply(&mut r),
            Err(ModelError::UnknownCompany(CompanyId(9)))
        );
        let self_arc = Mutation::AddInvestment(InvestmentRecord {
            investor: CompanyId(0),
            investee: CompanyId(0),
            share: 0.5,
        });
        assert_eq!(
            self_arc.apply(&mut r),
            Err(ModelError::SelfCompanyArc(CompanyId(0)))
        );
        assert_eq!(r.tradings().len(), 1, "failed mutations change nothing");
    }

    #[test]
    fn removals_are_noops_when_nothing_matches() {
        let mut r = seeded();
        assert!(!Mutation::RemoveTrading {
            seller: CompanyId(1),
            buyer: CompanyId(0),
        }
        .apply(&mut r)
        .unwrap());
        assert!(Mutation::RemoveTrading {
            seller: CompanyId(0),
            buyer: CompanyId(1),
        }
        .apply(&mut r)
        .unwrap());
        assert!(r.tradings().is_empty());
    }

    #[test]
    fn replay_is_deterministic() {
        let batch = MutationBatch::new(vec![
            Mutation::AddTrading(TradingRecord {
                seller: CompanyId(1),
                buyer: CompanyId(0),
                volume: 2.0,
            }),
            Mutation::SetTaxRate {
                company: CompanyId(0),
                rate: 0.17,
            },
        ]);
        let (mut a, mut b) = (seeded(), seeded());
        batch.apply_to_registry(&mut a).unwrap();
        batch.apply_to_registry(&mut b).unwrap();
        assert_eq!(a.tradings(), b.tradings());
        assert_eq!(a.company_tax_rate(CompanyId(0)), 0.17);
    }
}
