//! Registered companies (taxpayers).

use serde::{Deserialize, Serialize};

/// Statutory tax rate assumed for a company with no recorded rate —
/// the standard VAT rate in force when the paper's datasets were
/// collected.  Circular-trading detection scores cycles by rate
/// *differentials*, so a uniform default contributes zero signal.
pub const DEFAULT_TAX_RATE: f64 = 0.17;

/// A legally and separately registered company / corporate / trust /
/// institution that pays taxes singly — a *Company* node.
///
/// Every company must have exactly one legal person; that constraint is
/// enforced by [`crate::SourceRegistry::validate`], not here, because it
/// spans the company and the influence records.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Company {
    /// Human-readable label (e.g. `"C3"` in the paper's case studies).
    pub name: String,
}

impl Company {
    /// Creates a company with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        Company { name: name.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Company::new("C3").name, "C3");
    }
}
