//! Validation errors for source registries.

use crate::ids::{CompanyId, PersonId};
use std::fmt;

/// A structural defect found while validating a [`crate::SourceRegistry`].
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A record references a person id outside the registry.
    UnknownPerson(PersonId),
    /// A record references a company id outside the registry.
    UnknownCompany(CompanyId),
    /// An interdependence edge joins a person to itself.
    SelfInterdependence(PersonId),
    /// An investment or trading arc joins a company to itself.
    SelfCompanyArc(CompanyId),
    /// A company has no legal-person influence record.
    MissingLegalPerson(CompanyId),
    /// A company has more than one legal-person influence record.
    MultipleLegalPersons(CompanyId),
    /// The designated legal person's roles do not admit the position.
    InadmissibleLegalPerson {
        /// Company whose legal person is inadmissible.
        company: CompanyId,
        /// The offending person.
        person: PersonId,
    },
    /// An influence record's kind is inconsistent with the person's
    /// declared roles (strict validation only).
    RoleMismatch {
        /// The influencing person.
        person: PersonId,
        /// The influenced company.
        company: CompanyId,
    },
    /// An investment share lies outside `(0, 1]`.
    InvalidShare {
        /// The investing company.
        investor: CompanyId,
        /// The owned company.
        investee: CompanyId,
        /// The rejected share value.
        share: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownPerson(p) => write!(f, "record references unknown person {p}"),
            ModelError::UnknownCompany(c) => write!(f, "record references unknown company {c}"),
            ModelError::SelfInterdependence(p) => {
                write!(f, "interdependence edge joins {p} to itself")
            }
            ModelError::SelfCompanyArc(c) => {
                write!(f, "investment/trading arc joins {c} to itself")
            }
            ModelError::MissingLegalPerson(c) => {
                write!(f, "company {c} has no legal-person record")
            }
            ModelError::MultipleLegalPersons(c) => {
                write!(f, "company {c} has more than one legal-person record")
            }
            ModelError::InadmissibleLegalPerson { company, person } => write!(
                f,
                "person {person} cannot serve as legal person of {company}: role set not admissible"
            ),
            ModelError::RoleMismatch { person, company } => write!(
                f,
                "influence record {person} -> {company} is inconsistent with the person's roles"
            ),
            ModelError::InvalidShare {
                investor,
                investee,
                share,
            } => write!(
                f,
                "investment {investor} -> {investee} has share {share} outside (0, 1]"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = ModelError::MissingLegalPerson(CompanyId(4));
        assert_eq!(e.to_string(), "company C4 has no legal-person record");
        let e = ModelError::InvalidShare {
            investor: CompanyId(1),
            investee: CompanyId(2),
            share: 1.5,
        };
        assert!(e.to_string().contains("outside (0, 1]"));
    }
}
