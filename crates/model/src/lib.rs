//! `tpiin-model` — the taxpayer domain model behind a TPIIN.
//!
//! Section 4.1 of the paper starts from an *un-contracted* taxpayer
//! interest interacted network whose nodes are persons and companies and
//! whose edges carry five source relationships: kinship, director
//! interlocking, influence (directorship / legal-person subtypes),
//! investment and trading.  This crate models exactly those inputs:
//!
//! * [`RoleSet`] — the CB/CEO/D/S position bitset, with the paper's
//!   15 → 7 subclass reduction and legal-person admissibility rule;
//! * [`Person`] / [`Company`] with typed [`PersonId`] / [`CompanyId`];
//! * the source relationship records ([`Interdependence`],
//!   [`InfluenceRecord`], [`InvestmentRecord`], [`TradingRecord`]);
//! * [`SourceRegistry`] — a validated container for one province's worth
//!   of records, the input to `tpiin-fusion`.

mod company;
mod error;
mod ids;
mod intern;
mod mutation;
mod person;
mod registry;
mod relationship;
mod roles;

pub use company::{Company, DEFAULT_TAX_RATE};
pub use error::ModelError;
pub use ids::{CompanyId, PersonId};
pub use intern::{Interner, Symbol};
pub use mutation::{Mutation, MutationBatch};
pub use person::Person;
pub use registry::SourceRegistry;
pub use relationship::{
    InfluenceKind, InfluenceRecord, Interdependence, InterdependenceKind, InvestmentRecord,
    TradingRecord,
};
pub use roles::{Role, RoleSet};
