//! Typed identifiers for persons and companies.
//!
//! Distinct newtypes prevent the classic bug of indexing a person table
//! with a company id; both are dense indices into the owning
//! [`crate::SourceRegistry`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a natural person in a [`crate::SourceRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PersonId(pub u32);

/// Identifier of a registered company/corporate/trust in a
/// [`crate::SourceRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompanyId(pub u32);

impl PersonId {
    /// Dense index of this person.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CompanyId {
    /// Dense index of this company.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Debug for CompanyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for CompanyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(PersonId(3).to_string(), "P3");
        assert_eq!(CompanyId(7).to_string(), "C7");
        assert_eq!(format!("{:?}", PersonId(3)), "P3");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(PersonId(9).index(), 9);
        assert_eq!(CompanyId(0).index(), 0);
    }
}
