//! Differential property tests: the parallel fusion front-end must be
//! bit-identical to the serial pipeline on every valid registry, at any
//! worker count — same nodes, same labels, same arc order and weights,
//! same report counters.  Worker counts above the host's core count are
//! included on purpose: chunking must not depend on physical parallelism.

use proptest::prelude::*;
use tpiin_fusion::{fuse_with, FuseOptions, FusionReport};
use tpiin_model::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
    SourceRegistry, TradingRecord,
};

#[derive(Debug, Clone)]
struct RawRegistry {
    np: usize,
    nc: usize,
    lp_of: Vec<usize>,
    directorships: Vec<(usize, usize)>,
    interdependence: Vec<(usize, usize, bool)>,
    investments: Vec<(usize, usize)>,
    trades: Vec<(usize, usize)>,
}

fn arb_registry() -> impl Strategy<Value = RawRegistry> {
    (2usize..7, 2usize..12).prop_flat_map(|(np, nc)| {
        (
            proptest::collection::vec(0..np, nc),
            proptest::collection::vec((0..np, 0..nc), 0..10),
            proptest::collection::vec((0..np, 0..np, any::<bool>()), 0..6),
            proptest::collection::vec((0..nc, 0..nc), 0..15),
            proptest::collection::vec((0..nc, 0..nc), 0..12),
        )
            .prop_map(
                move |(lp_of, directorships, interdependence, investments, trades)| RawRegistry {
                    np,
                    nc,
                    lp_of,
                    directorships,
                    interdependence,
                    investments,
                    trades,
                },
            )
    })
}

fn build(raw: &RawRegistry) -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let persons: Vec<_> = (0..raw.np)
        .map(|i| r.add_person(format!("P{i}"), RoleSet::of(&[Role::Ceo, Role::Director])))
        .collect();
    let companies: Vec<_> = (0..raw.nc)
        .map(|i| r.add_company(format!("C{i}")))
        .collect();
    for (c, &p) in raw.lp_of.iter().enumerate() {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    for &(p, c) in &raw.directorships {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
    }
    for &(a, b, kin) in &raw.interdependence {
        if a != b {
            let kind = if kin {
                InterdependenceKind::Kinship
            } else {
                InterdependenceKind::Interlocking
            };
            r.add_interdependence(persons[a], persons[b], kind);
        }
    }
    for &(a, b) in &raw.investments {
        if a != b {
            r.add_investment(InvestmentRecord {
                investor: companies[a],
                investee: companies[b],
                share: 0.5,
            });
        }
    }
    for &(a, b) in &raw.trades {
        if a != b {
            r.add_trading(TradingRecord {
                seller: companies[a],
                buyer: companies[b],
                volume: 1.0,
            });
        }
    }
    r
}

/// The report with wall-clock noise stripped, so arms compare exactly.
fn strip_timings(mut report: FusionReport) -> FusionReport {
    report.stage_timings.clear();
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serial and parallel fusion agree on everything observable: node
    /// set and labels, full arc list (order, colors, weights), node
    /// lookup tables, intra-syndicate trades, and report counters.
    #[test]
    fn parallel_fusion_is_bit_identical_to_serial(
        raw in arb_registry(),
        threads in 2usize..6,
    ) {
        let registry = build(&raw);
        let (serial, serial_report) =
            fuse_with(&registry, FuseOptions { threads: 1 }).expect("valid registry fuses");
        let (parallel, parallel_report) =
            fuse_with(&registry, FuseOptions { threads }).expect("valid registry fuses");

        prop_assert_eq!(serial.edge_list(), parallel.edge_list());
        prop_assert_eq!(serial.node_count(), parallel.node_count());
        let labels = |t: &tpiin_fusion::Tpiin| -> Vec<(String, tpiin_fusion::NodeColor)> {
            t.graph
                .nodes()
                .map(|(_, n)| (n.label().to_string(), n.color()))
                .collect()
        };
        prop_assert_eq!(labels(&serial), labels(&parallel));
        prop_assert_eq!(&serial.person_node, &parallel.person_node);
        prop_assert_eq!(&serial.company_node, &parallel.company_node);
        prop_assert_eq!(
            &serial.intra_syndicate_trades,
            &parallel.intra_syndicate_trades
        );
        prop_assert_eq!(
            strip_timings(serial_report),
            strip_timings(parallel_report)
        );
    }
}
