//! Property-based tests of the fusion pipeline: the Appendix A invariants
//! must hold for every valid registry, including ones with investment
//! cycles and dense interdependence.

use proptest::prelude::*;
use tpiin_fusion::{fuse, ArcColor, NodeColor};
use tpiin_model::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
    SourceRegistry, TradingRecord,
};

#[derive(Debug, Clone)]
struct RawRegistry {
    np: usize,
    nc: usize,
    lp_of: Vec<usize>,
    directorships: Vec<(usize, usize)>,
    interdependence: Vec<(usize, usize, bool)>,
    investments: Vec<(usize, usize)>,
    trades: Vec<(usize, usize)>,
}

fn arb_registry() -> impl Strategy<Value = RawRegistry> {
    (2usize..7, 2usize..12).prop_flat_map(|(np, nc)| {
        (
            proptest::collection::vec(0..np, nc),
            proptest::collection::vec((0..np, 0..nc), 0..10),
            proptest::collection::vec((0..np, 0..np, any::<bool>()), 0..6),
            proptest::collection::vec((0..nc, 0..nc), 0..15),
            proptest::collection::vec((0..nc, 0..nc), 0..12),
        )
            .prop_map(
                move |(lp_of, directorships, interdependence, investments, trades)| RawRegistry {
                    np,
                    nc,
                    lp_of,
                    directorships,
                    interdependence,
                    investments,
                    trades,
                },
            )
    })
}

fn build(raw: &RawRegistry) -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let persons: Vec<_> = (0..raw.np)
        .map(|i| r.add_person(format!("P{i}"), RoleSet::of(&[Role::Ceo, Role::Director])))
        .collect();
    let companies: Vec<_> = (0..raw.nc)
        .map(|i| r.add_company(format!("C{i}")))
        .collect();
    for (c, &p) in raw.lp_of.iter().enumerate() {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    for &(p, c) in &raw.directorships {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
    }
    for &(a, b, kin) in &raw.interdependence {
        if a != b {
            r.add_interdependence(
                persons[a],
                persons[b],
                if kin {
                    InterdependenceKind::Kinship
                } else {
                    InterdependenceKind::Interlocking
                },
            );
        }
    }
    for &(a, b) in &raw.investments {
        if a != b {
            r.add_investment(InvestmentRecord {
                investor: companies[a],
                investee: companies[b],
                share: 0.4,
            });
        }
    }
    for &(a, b) in &raw.trades {
        if a != b {
            r.add_trading(TradingRecord {
                seller: companies[a],
                buyer: companies[b],
                volume: 1.0,
            });
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn fusion_invariants(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, report) = fuse(&registry).expect("valid registry fuses");

        // Node conservation: every source entity lands in exactly one
        // TPIIN node, persons and companies never merge together.
        let mut person_members = 0;
        let mut company_members = 0;
        for (_, node) in tpiin.graph.nodes() {
            match node {
                tpiin_fusion::TpiinNode::Person { members, .. } => {
                    prop_assert!(!members.is_empty());
                    person_members += members.len();
                }
                tpiin_fusion::TpiinNode::Company { members, .. } => {
                    prop_assert!(!members.is_empty());
                    company_members += members.len();
                }
            }
        }
        prop_assert_eq!(person_members, registry.person_count());
        prop_assert_eq!(company_members, registry.company_count());

        // Lookup tables agree with node colors.
        for (pid, _) in registry.persons() {
            prop_assert_eq!(tpiin.color(tpiin.person_node[pid.index()]), NodeColor::Person);
        }
        for (cid, _) in registry.companies() {
            prop_assert_eq!(tpiin.color(tpiin.company_node[cid.index()]), NodeColor::Company);
        }

        // Persons have indegree zero; influence arcs never end at persons.
        for v in tpiin.graph.node_ids() {
            if tpiin.color(v) == NodeColor::Person {
                prop_assert_eq!(tpiin.graph.in_degree(v), 0);
            }
        }
        for e in tpiin.graph.edges() {
            prop_assert_eq!(tpiin.color(e.target), NodeColor::Company);
            if e.weight.color == ArcColor::Trading {
                prop_assert_eq!(tpiin.color(e.source), NodeColor::Company);
            }
        }

        // The antecedent network is a DAG: walk influence arcs only.
        let mut g: tpiin_graph::DiGraph<(), ()> = tpiin_graph::DiGraph::new();
        for _ in 0..tpiin.graph.node_count() {
            g.add_node(());
        }
        for e in tpiin.graph.edges() {
            if e.weight.color == ArcColor::Influence {
                g.add_edge(e.source, e.target, ());
            }
        }
        prop_assert!(tpiin_graph::is_acyclic(&g));

        // Arc accounting: trading records = arcs + intra-syndicate +
        // duplicates dropped among trading.  (Duplicates are reported as
        // one total; bound the sum instead of splitting by color.)
        prop_assert!(report.trading_arcs + report.intra_syndicate_trades <= report.trading_records);
        prop_assert!(
            report.influence_arcs <= report.influence_records + report.investment_records
        );
        prop_assert_eq!(report.tpiin_nodes, tpiin.node_count());

        // No duplicate same-color arcs remain.
        let mut seen = std::collections::HashSet::new();
        for e in tpiin.graph.edges() {
            prop_assert!(
                seen.insert((e.source, e.target, e.weight.color.code())),
                "duplicate arc {:?} -> {:?}",
                e.source,
                e.target
            );
        }
    }

    #[test]
    fn refusing_then_fusing_is_deterministic(raw in arb_registry()) {
        let registry = build(&raw);
        let (a, mut ra) = fuse(&registry).expect("valid registry fuses");
        let (b, mut rb) = fuse(&registry).expect("valid registry fuses");
        // Stage wall-clock timings are inherently nondeterministic; the
        // structural statistics must match exactly.
        ra.stage_timings.clear();
        rb.stage_timings.clear();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.node_count(), b.node_count());
        let arcs = |t: &tpiin_fusion::Tpiin| -> Vec<_> {
            t.graph
                .edges()
                .map(|e| (e.source, e.target, e.weight.color))
                .collect()
        };
        prop_assert_eq!(arcs(&a), arcs(&b));
    }
}
