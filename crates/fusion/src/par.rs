//! Scoped-thread parallel primitives for the fusion front-end.
//!
//! The fusion pipeline parallelizes three shapes of work: independent
//! per-record-type sweeps (validation), chunked maps over dense index
//! ranges (node payload construction), and large sorts (the sort-based
//! arc deduplication).  This module provides exactly those three
//! primitives over `crossbeam::thread::scope`, so no work ever outlives
//! the borrowed registry and no channel or queue machinery is needed —
//! every helper is fork/join with results returned in deterministic
//! (chunk) order, never in completion order.

use crossbeam::thread;

/// Resolves a requested worker count: `0` means one worker per available
/// core, anything else is taken literally (a caller may deliberately
/// oversubscribe, e.g. differential tests forcing the parallel code path
/// on a single-core host).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Splits `items` into at most `workers` near-equal contiguous chunks and
/// maps each chunk on its own scoped thread.  `f` receives the chunk's
/// starting offset in `items` plus the chunk itself; results come back in
/// chunk order regardless of which worker finished first.
pub fn map_chunks<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if workers <= 1 || items.len() == 1 {
        return vec![f(0, items)];
    }
    let chunk = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| scope.spawn(move |_| f(i * chunk, slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fusion worker panicked"))
            .collect()
    })
    .expect("fusion scope")
}

/// Runs independent jobs of the same result type on scoped threads,
/// returning their results in job order.  Used for the per-record-type
/// validation sweeps.
pub fn run_jobs<R, F>(workers: usize, jobs: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(move |_| job()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fusion worker panicked"))
            .collect()
    })
    .expect("fusion scope")
}

/// Unstable sort by key, parallelized as chunk-sort + bottom-up merge.
///
/// Each of up to `workers` contiguous chunks is sorted on its own scoped
/// thread; sorted runs are then merged pairwise through one auxiliary
/// buffer.  The merge is stable across runs (ties take the left run
/// first), so for a unique key the result is identical to
/// `slice::sort_unstable_by_key` — the arc-dedup caller always sorts by
/// a unique `(key, seq)` pair, making the whole sort deterministic.
pub fn par_sort_unstable_by_key<T, K, F>(workers: usize, items: &mut [T], key: F)
where
    T: Send + Copy,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    if workers <= 1 || items.len() < 2 {
        items.sort_unstable_by_key(&key);
        return;
    }
    let chunk = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let key = &key;
        for slice in items.chunks_mut(chunk) {
            scope.spawn(move |_| slice.sort_unstable_by_key(key));
        }
    })
    .expect("fusion scope");

    // Bottom-up merge of the sorted runs; `width` doubles each pass.
    let mut aux: Vec<T> = Vec::with_capacity(items.len());
    let mut width = chunk;
    while width < items.len() {
        let mut start = 0;
        while start + width < items.len() {
            let mid = start + width;
            let end = (mid + width).min(items.len());
            merge_into(&items[start..mid], &items[mid..end], &mut aux, &key);
            items[start..end].copy_from_slice(&aux);
            start = end;
        }
        width *= 2;
    }
}

fn merge_into<T: Copy, K: Ord>(left: &[T], right: &[T], out: &mut Vec<T>, key: &impl Fn(&T) -> K) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if key(&left[i]) <= key(&right[j]) {
            out.push(left[i]);
            i += 1;
        } else {
            out.push(right[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_maps_to_host_cores() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(resolve_threads(0), cores);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let items: Vec<u32> = (0..100).collect();
        let sums = map_chunks(4, &items, |start, chunk| (start, chunk.iter().sum::<u32>()));
        let starts: Vec<usize> = sums.iter().map(|&(s, _)| s).collect();
        assert_eq!(starts, [0, 25, 50, 75]);
        let total: u32 = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn map_chunks_handles_empty_and_serial() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_chunks(4, &empty, |_, c| c.len()).is_empty());
        assert_eq!(map_chunks(1, &[1, 2, 3], |_, c| c.len()), vec![3]);
    }

    #[test]
    fn run_jobs_keeps_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..5usize)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(run_jobs(4, jobs), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn par_sort_matches_serial_sort() {
        // Deterministic pseudo-random data, including duplicates.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut items: Vec<(u64, u32)> = (0..10_000)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 512, i)
            })
            .collect();
        let mut expected = items.clone();
        expected.sort_unstable_by_key(|&(k, s)| (k, s));
        for workers in [1, 2, 3, 8] {
            let mut got = items.clone();
            par_sort_unstable_by_key(workers, &mut got, |&(k, s)| (k, s));
            assert_eq!(got, expected, "workers = {workers}");
        }
        par_sort_unstable_by_key(4, &mut items, |&(k, s)| (k, s));
        assert_eq!(items, expected);
    }

    #[test]
    fn par_sort_handles_tiny_inputs() {
        let mut one = [42u32];
        par_sort_unstable_by_key(8, &mut one, |&x| x);
        assert_eq!(one, [42]);
        let mut empty: [u32; 0] = [];
        par_sort_unstable_by_key(8, &mut empty, |&x| x);
    }
}
