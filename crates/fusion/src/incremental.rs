//! Incremental fusion primitives for delta maintenance.
//!
//! The full pipeline ([`crate::fuse_with`]) recomputes every contraction
//! from scratch.  A delta engine replaying registry mutations can do
//! better: person syndicates are a monotone union–find (cheap to rebuild
//! outright), and investment SCCs only change inside the weak components
//! touched by added/removed investment arcs.  This module provides the
//! pieces the `tpiin-delta` crate composes:
//!
//! * [`person_syndicates`] — person labels via union–find, `O(P + I)`;
//! * [`investment_wcc`] / [`dirty_companies`] — the blast region of an
//!   investment delta (every company whose *new* weak component contains
//!   a delta endpoint);
//! * [`company_scc_reps`] / [`company_scc_reps_delta`] — full vs.
//!   bounded re-Tarjan (only the dirty subset is traversed);
//! * [`canonical_company_labels`] — the pipeline's first-appearance
//!   dense numbering over min-member representatives;
//! * [`assemble_from_labels`] — rebuild the [`Tpiin`] from known labels
//!   in one serial `O(V + E)` pass with counting-sort first-wins arc
//!   dedup, bit-identical to what [`crate::fuse_with`] produces for the
//!   same registry.
//!
//! **Soundness of the dirty rule.**  Every *present* investment record
//! has both endpoints in one new weak component; a *removed* record's
//! endpoints land in (up to two) new components that are both marked
//! dirty.  A clean new component therefore has exactly the membership and
//! internal arcs it had before the delta, so its stored min-member SCC
//! representatives carry over unchanged.  Dirty components are re-run
//! through a fresh [`SccScratch`] — the dirty set is a union of weak
//! components, hence closed under investment arcs as the scratch
//! requires.  Min-member representatives make the merged labelling
//! independent of which side computed it.
//!
//! None of these functions validate the registry: the delta engine
//! performs its own (incremental) validation before calling in.

use crate::compact::Members;
use crate::pipeline::{join_labels, FusionError};
use crate::tpiin::{ArcColor, IntraSyndicateTrade, Tpiin, TpiinArc, TpiinNode, INFLUENCE_LANE};
use tpiin_graph::{DiGraph, NodeId, SccScratch, UnionFind};
use tpiin_model::{CompanyId, PersonId, SourceRegistry};

/// Person-syndicate labels (`G12 -> G12'`): union–find over the
/// interdependence edges, exactly as the full pipeline computes them.
/// Returns `(labels, syndicate_count)`.
pub fn person_syndicates(registry: &SourceRegistry) -> (Vec<u32>, usize) {
    let mut uf = UnionFind::new(registry.person_count());
    for i in registry.interdependencies() {
        uf.union(i.a.index(), i.b.index());
    }
    uf.into_labels()
}

/// Weak-component labels of the investment graph.  Returns
/// `(labels, component_count)`.
pub fn investment_wcc(registry: &SourceRegistry) -> (Vec<u32>, usize) {
    let mut uf = UnionFind::new(registry.company_count());
    for inv in registry.investments() {
        uf.union(inv.investor.index(), inv.investee.index());
    }
    uf.into_labels()
}

/// The companies whose SCC membership an investment delta may have
/// changed: every member of a *new* weak component containing a delta
/// endpoint.  `endpoints` lists both companies of every added or removed
/// investment record; out-of-range ids (e.g. a company removed by the
/// same batch) are ignored.  The result is ascending and closed under
/// investment arcs — a valid [`SccScratch`] subset.
pub fn dirty_companies(
    wcc_labels: &[u32],
    wcc_count: usize,
    endpoints: impl IntoIterator<Item = CompanyId>,
) -> Vec<u32> {
    let mut dirty_wcc = vec![false; wcc_count];
    for c in endpoints {
        if let Some(&label) = wcc_labels.get(c.index()) {
            dirty_wcc[label as usize] = true;
        }
    }
    (0..wcc_labels.len() as u32)
        .filter(|&c| dirty_wcc[wcc_labels[c as usize] as usize])
        .collect()
}

/// Flat CSR of the investment graph (counting sort over sources), the
/// adjacency [`SccScratch`] traverses.
fn investment_csr(registry: &SourceRegistry) -> (Vec<u32>, Vec<u32>) {
    let nc = registry.company_count();
    let investments = registry.investments();
    let mut offsets = vec![0u32; nc + 1];
    for inv in investments {
        offsets[inv.investor.index() + 1] += 1;
    }
    for i in 0..nc {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; investments.len()];
    for inv in investments {
        let s = inv.investor.index();
        targets[cursor[s] as usize] = inv.investee.0;
        cursor[s] += 1;
    }
    (offsets, targets)
}

/// Min-member SCC representative of every company, from scratch (serial
/// Tarjan over the whole investment graph).  Seeds the delta engine's
/// carried state.
pub fn company_scc_reps(registry: &SourceRegistry) -> Vec<u32> {
    let nc = registry.company_count();
    let mut reps: Vec<u32> = (0..nc as u32).collect();
    if nc > 0 {
        let (offsets, targets) = investment_csr(registry);
        let all: Vec<u32> = (0..nc as u32).collect();
        let mut scratch = SccScratch::new(nc);
        scratch.run(&offsets, &targets, &all, |v, rep| reps[v as usize] = rep);
    }
    reps
}

/// Bounded re-Tarjan: carries `old_reps` over for clean companies and
/// re-runs Tarjan only over `dirty` (ascending, closed under investment
/// arcs — see [`dirty_companies`]).  Companies past the end of
/// `old_reps` (registered by the current batch) default to singleton
/// representatives; any with investment arcs are necessarily dirty and
/// get overwritten.  A fresh scratch is built per call: [`SccScratch`]
/// state is single-use across disjoint subsets, never reset.
pub fn company_scc_reps_delta(
    registry: &SourceRegistry,
    old_reps: &[u32],
    dirty: &[u32],
) -> Vec<u32> {
    let nc = registry.company_count();
    let mut reps: Vec<u32> = (0..nc as u32)
        .map(|c| old_reps.get(c as usize).copied().unwrap_or(c))
        .collect();
    if !dirty.is_empty() {
        let (offsets, targets) = investment_csr(registry);
        let mut scratch = SccScratch::new(nc);
        scratch.run(&offsets, &targets, dirty, |v, rep| reps[v as usize] = rep);
    }
    reps
}

/// The pipeline's canonical dense company labelling: syndicates numbered
/// by first appearance of their representative over `CompanyId` order.
/// Returns `(labels, syndicate_count)`.
pub fn canonical_company_labels(reps: &[u32]) -> (Vec<u32>, usize) {
    let nc = reps.len();
    let mut rank = vec![u32::MAX; nc];
    let mut labels = vec![0u32; nc];
    let mut count = 0u32;
    for c in 0..nc {
        let rep = reps[c] as usize;
        if rank[rep] == u32::MAX {
            rank[rep] = count;
            count += 1;
        }
        labels[c] = rank[rep];
    }
    (labels, count as usize)
}

/// Arc-drop tallies from [`assemble_from_labels`], mirroring the
/// corresponding [`crate::FusionReport`] fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebuildCounts {
    /// Investment records internal to a contracted SCC.
    pub internal_investment_arcs_dropped: usize,
    /// Parallel same-color arcs dropped by first-wins dedup.
    pub duplicate_arcs_dropped: usize,
}

/// One candidate arc before dedup: endpoints as TPIIN node indices, the
/// source-record sequence, and the arc weight.
struct Cand {
    src: u32,
    dst: u32,
    seq: u32,
    weight: f64,
}

/// First-occurrence-wins dedup of one color partition in
/// `O(nodes + candidates)`: a stable counting sort groups candidates by
/// source node, a stamp array keeps the first destination seen per
/// source, and survivors are emitted in their original (ascending
/// sequence) order — the same output [`crate::fuse_with`]'s sort-based
/// dedup produces.  Returns `(survivors, dropped)`.
fn dedup_first_wins_counting(n_nodes: usize, items: Vec<Cand>) -> (Vec<Cand>, usize) {
    let before = items.len();
    let mut offsets = vec![0u32; n_nodes + 1];
    for it in &items {
        offsets[it.src as usize + 1] += 1;
    }
    for i in 0..n_nodes {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets;
    let mut order = vec![0u32; items.len()];
    for (i, it) in items.iter().enumerate() {
        order[cursor[it.src as usize] as usize] = i as u32;
        cursor[it.src as usize] += 1;
    }
    // `mark[dst]` holds the last source that claimed `dst`; each source's
    // bucket is visited exactly once, so the source id is a unique stamp.
    let mut mark = vec![u32::MAX; n_nodes];
    let mut keep = vec![false; items.len()];
    for &idx in &order {
        let it = &items[idx as usize];
        if mark[it.dst as usize] != it.src {
            mark[it.dst as usize] = it.src;
            keep[idx as usize] = true;
        }
    }
    let survivors: Vec<Cand> = items
        .into_iter()
        .zip(&keep)
        .filter_map(|(it, &k)| k.then_some(it))
        .collect();
    let dropped = before - survivors.len();
    (survivors, dropped)
}

/// Rebuilds the fused TPIIN from a registry and already-known syndicate
/// labels, in one serial pass.  This is [`crate::fuse_with`] with the
/// validation and contraction stages cut out: given the labels the full
/// pipeline would have computed, the output network is **bit-identical**
/// to the full pipeline's — same node order, edge ids, arc weights,
/// provenance, and intra-syndicate trade list.
///
/// Fails with [`FusionError::AntecedentNotAcyclic`] when the labels are
/// inconsistent with the registry's investment structure (an incremental
/// maintenance bug — valid labels always yield a DAG, Appendix A).
pub fn assemble_from_labels(
    registry: &SourceRegistry,
    person_labels: &[u32],
    person_node_count: usize,
    company_labels: &[u32],
    company_node_count: usize,
) -> Result<(Tpiin, RebuildCounts), FusionError> {
    let mut person_members: Vec<Vec<PersonId>> = vec![Vec::new(); person_node_count];
    for (p, &label) in person_labels.iter().enumerate() {
        person_members[label as usize].push(PersonId(p as u32));
    }
    let mut company_members: Vec<Vec<CompanyId>> = vec![Vec::new(); company_node_count];
    for (c, &label) in company_labels.iter().enumerate() {
        company_members[label as usize].push(CompanyId(c as u32));
    }

    let n_nodes = person_node_count + company_node_count;
    let mut graph: DiGraph<TpiinNode, TpiinArc> = DiGraph::with_capacity(
        n_nodes,
        registry.influences().len() + registry.investments().len() + registry.tradings().len(),
    );
    for members in &person_members {
        graph.add_node(TpiinNode::Person {
            label: join_labels(members.iter().map(|&p| registry.person(p).name.as_str())),
            members: Members::from_slice(members),
        });
    }
    for members in &company_members {
        graph.add_node(TpiinNode::Company {
            label: join_labels(members.iter().map(|&c| registry.company(c).name.as_str())),
            members: Members::from_slice(members),
        });
    }
    let person_node: Vec<NodeId> = person_labels
        .iter()
        .map(|&l| NodeId::from_index(l as usize))
        .collect();
    let company_node: Vec<NodeId> = company_labels
        .iter()
        .map(|&l| NodeId::from_index(person_node_count + l as usize))
        .collect();

    // Influence partition: influence records, then investment records
    // offset past them — the same sequence numbering the pipeline uses.
    let influences = registry.influences();
    let mut counts = RebuildCounts::default();
    let mut influence_items: Vec<Cand> =
        Vec::with_capacity(influences.len() + registry.investments().len());
    for (i, inf) in influences.iter().enumerate() {
        influence_items.push(Cand {
            src: person_node[inf.person.index()].index() as u32,
            dst: company_node[inf.company.index()].index() as u32,
            seq: i as u32,
            weight: 1.0,
        });
    }
    for (i, inv) in registry.investments().iter().enumerate() {
        let s = company_node[inv.investor.index()];
        let t = company_node[inv.investee.index()];
        if s == t {
            counts.internal_investment_arcs_dropped += 1;
            continue;
        }
        influence_items.push(Cand {
            src: s.index() as u32,
            dst: t.index() as u32,
            seq: (influences.len() + i) as u32,
            weight: inv.share,
        });
    }
    let (influence_items, dropped) = dedup_first_wins_counting(n_nodes, influence_items);
    counts.duplicate_arcs_dropped += dropped;
    let mut arc_sources: Vec<u32> =
        Vec::with_capacity(influence_items.len() + registry.tradings().len());
    for it in &influence_items {
        graph.add_edge(
            NodeId::from_index(it.src as usize),
            NodeId::from_index(it.dst as usize),
            TpiinArc {
                color: ArcColor::Influence,
                weight: it.weight,
            },
        );
        arc_sources.push(it.seq);
    }
    let influence_arc_count = graph.edge_count();

    // Trading partition: intra-syndicate diversion precedes dedup, so a
    // diverted record never shadows (or is shadowed by) an external arc.
    let mut intra_syndicate_trades = Vec::new();
    let mut trading_items: Vec<Cand> = Vec::with_capacity(registry.tradings().len());
    for (seq, tr) in registry.tradings().iter().enumerate() {
        let s = company_node[tr.seller.index()];
        let t = company_node[tr.buyer.index()];
        if s == t {
            intra_syndicate_trades.push(IntraSyndicateTrade {
                seller: tr.seller,
                buyer: tr.buyer,
                syndicate: s,
                volume: tr.volume,
            });
            continue;
        }
        trading_items.push(Cand {
            src: s.index() as u32,
            dst: t.index() as u32,
            seq: seq as u32,
            weight: tr.volume,
        });
    }
    let (trading_items, dropped) = dedup_first_wins_counting(n_nodes, trading_items);
    counts.duplicate_arcs_dropped += dropped;
    for it in &trading_items {
        graph.add_edge(
            NodeId::from_index(it.src as usize),
            NodeId::from_index(it.dst as usize),
            TpiinArc {
                color: ArcColor::Trading,
                weight: it.weight,
            },
        );
        arc_sources.push(it.seq);
    }
    let trading_arc_count = graph.edge_count() - influence_arc_count;

    let tpiin = Tpiin::assemble(
        graph,
        person_node,
        company_node,
        influence_arc_count,
        trading_arc_count,
        intra_syndicate_trades,
        arc_sources,
    );
    if !tpiin.csr().is_acyclic(INFLUENCE_LANE) {
        return Err(FusionError::AntecedentNotAcyclic);
    }
    Ok((tpiin, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
        TradingRecord,
    };

    /// The pipeline test fixture: kin legal persons, a C3<->C4 investment
    /// cycle, external + intra-syndicate trading, one duplicate arc.
    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l6 = r.add_person("L6", RoleSet::of(&[Role::Ceo]));
        let lb = r.add_person("LB", RoleSet::of(&[Role::Ceo]));
        let l9 = r.add_person("L9", RoleSet::of(&[Role::Chairman]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        let c4 = r.add_company("C4");
        for (p, c) in [(l6, c1), (lb, c2), (l9, c3), (l9, c4)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_interdependence(l6, lb, InterdependenceKind::Kinship);
        for (s, t) in [(c3, c4), (c4, c3), (c1, c3)] {
            r.add_investment(InvestmentRecord {
                investor: s,
                investee: t,
                share: 0.7,
            });
        }
        r.add_trading(TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 5.0,
        });
        r.add_trading(TradingRecord {
            seller: c3,
            buyer: c4,
            volume: 7.0,
        });
        r
    }

    fn labels_of(r: &SourceRegistry) -> (Vec<u32>, usize, Vec<u32>, usize) {
        let (pl, np) = person_syndicates(r);
        let reps = company_scc_reps(r);
        let (cl, nc) = canonical_company_labels(&reps);
        (pl, np, cl, nc)
    }

    fn assert_identical(a: &Tpiin, b: &Tpiin) {
        assert_eq!(a.edge_list(), b.edge_list());
        assert_eq!(a.person_node, b.person_node);
        assert_eq!(a.company_node, b.company_node);
        assert_eq!(a.arc_sources, b.arc_sources);
        assert_eq!(a.intra_syndicate_trades, b.intra_syndicate_trades);
        assert_eq!(a.influence_arc_count, b.influence_arc_count);
        assert_eq!(a.trading_arc_count, b.trading_arc_count);
        let la: Vec<&str> = a.graph.nodes().map(|(_, n)| n.label()).collect();
        let lb: Vec<&str> = b.graph.nodes().map(|(_, n)| n.label()).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn rebuild_from_labels_matches_full_fuse_bit_for_bit() {
        let r = registry();
        let (full, report) = fuse(&r).unwrap();
        let (pl, np, cl, nc) = labels_of(&r);
        let (rebuilt, counts) = assemble_from_labels(&r, &pl, np, &cl, nc).unwrap();
        assert_identical(&rebuilt, &full);
        assert_eq!(
            counts.internal_investment_arcs_dropped,
            report.internal_investment_arcs_dropped
        );
        assert_eq!(counts.duplicate_arcs_dropped, report.duplicate_arcs_dropped);
    }

    #[test]
    fn delta_reps_match_full_recompute_after_investment_changes() {
        let mut r = registry();
        let old_reps = company_scc_reps(&r);
        // Grow the cycle: C2 joins via C4 -> C2 -> C3.
        r.add_investment(InvestmentRecord {
            investor: CompanyId(3),
            investee: CompanyId(1),
            share: 0.5,
        });
        r.add_investment(InvestmentRecord {
            investor: CompanyId(1),
            investee: CompanyId(2),
            share: 0.5,
        });
        let (wcc, n_wcc) = investment_wcc(&r);
        let dirty = dirty_companies(
            &wcc,
            n_wcc,
            [CompanyId(3), CompanyId(1), CompanyId(1), CompanyId(2)],
        );
        let delta = company_scc_reps_delta(&r, &old_reps, &dirty);
        assert_eq!(delta, company_scc_reps(&r));
        assert_eq!(delta[1], delta[2], "C2 merged into the syndicate");
    }

    #[test]
    fn delta_reps_handle_scc_splits_on_removal() {
        let mut r = registry();
        let old_reps = company_scc_reps(&r);
        assert_eq!(old_reps[2], old_reps[3]);
        // Break the C3 <-> C4 cycle: the syndicate must split.
        assert!(r.remove_investment(CompanyId(3), CompanyId(2)));
        let (wcc, n_wcc) = investment_wcc(&r);
        let dirty = dirty_companies(&wcc, n_wcc, [CompanyId(3), CompanyId(2)]);
        let delta = company_scc_reps_delta(&r, &old_reps, &dirty);
        assert_eq!(delta, company_scc_reps(&r));
        assert_ne!(delta[2], delta[3], "syndicate split");
    }

    #[test]
    fn clean_components_are_not_re_traversed() {
        let r = registry();
        let old_reps = company_scc_reps(&r);
        // A delta touching nothing: no dirty companies, reps carry over.
        let (wcc, n_wcc) = investment_wcc(&r);
        let dirty = dirty_companies(&wcc, n_wcc, std::iter::empty());
        assert!(dirty.is_empty());
        assert_eq!(company_scc_reps_delta(&r, &old_reps, &dirty), old_reps);
    }

    #[test]
    fn new_companies_default_to_singletons() {
        let mut r = registry();
        let old_reps = company_scc_reps(&r);
        r.add_person("L5", RoleSet::of(&[Role::Ceo]));
        let c5 = r.add_company("C5");
        r.add_influence(InfluenceRecord {
            person: PersonId(3),
            company: c5,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        let (wcc, n_wcc) = investment_wcc(&r);
        let dirty = dirty_companies(&wcc, n_wcc, std::iter::empty());
        let delta = company_scc_reps_delta(&r, &old_reps, &dirty);
        assert_eq!(delta, company_scc_reps(&r));
        assert_eq!(delta[4], 4);
    }

    #[test]
    fn dirty_set_is_closed_under_investment_arcs() {
        let r = registry();
        let (wcc, n_wcc) = investment_wcc(&r);
        // Touching C3 pulls in its whole weak component {C1, C3, C4}.
        let dirty = dirty_companies(&wcc, n_wcc, [CompanyId(2)]);
        assert_eq!(dirty, vec![0, 2, 3]);
    }

    #[test]
    fn counting_dedup_keeps_first_occurrence() {
        let items = vec![
            Cand {
                src: 1,
                dst: 2,
                seq: 0,
                weight: 0.3,
            },
            Cand {
                src: 0,
                dst: 2,
                seq: 1,
                weight: 0.5,
            },
            Cand {
                src: 1,
                dst: 2,
                seq: 2,
                weight: 0.9,
            },
        ];
        let (kept, dropped) = dedup_first_wins_counting(3, items);
        assert_eq!(dropped, 1);
        let seqs: Vec<u32> = kept.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, [0, 1], "survivors stay in sequence order");
        assert_eq!(kept[0].weight, 0.3, "first occurrence wins the weight");
    }
}
