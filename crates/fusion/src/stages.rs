//! Intermediate homogeneous graphs of the fusion chain.
//!
//! These builders expose each stage of Section 4.1 separately so that the
//! Appendix A properties can be checked in isolation and so the network
//! statistics behind Figs. 11–15 can be reported per stage.  The
//! end-to-end pipeline in [`crate::fuse`] uses the same logic but fuses in
//! one pass for efficiency.

use tpiin_graph::{check_bipartite, DiGraph, Partition};
use tpiin_model::{InterdependenceKind, SourceRegistry};

/// Node payload for stage graphs that mix persons and companies: `true`
/// for persons.  Persons occupy indices `0..person_count`, companies
/// `person_count..`.
pub type IsPerson = bool;

/// Builds `G1`, the interdependence graph: one node per person, one
/// (arbitrarily oriented) arc per kinship/interlocking edge.  `G1` is
/// conceptually undirected; direction here is storage only.
pub fn build_g1(registry: &SourceRegistry) -> DiGraph<(), InterdependenceKind> {
    let mut g = DiGraph::with_capacity(registry.person_count(), registry.interdependencies().len());
    for _ in 0..registry.person_count() {
        g.add_node(());
    }
    for i in registry.interdependencies() {
        g.add_edge(
            tpiin_graph::NodeId::from_index(i.a.index()),
            tpiin_graph::NodeId::from_index(i.b.index()),
            i.kind,
        );
    }
    g
}

/// Builds `G2`, the influence bipartite graph: persons then companies as
/// nodes, one arc per influence record.  Arcs run Person→Company only —
/// checked, mirroring the Appendix A property ("each *Person* node must
/// have indegree of zero and each *Company* node must have outdegree of
/// zero").
pub fn build_g2(registry: &SourceRegistry) -> DiGraph<IsPerson, ()> {
    let np = registry.person_count();
    let mut g = DiGraph::with_capacity(np + registry.company_count(), registry.influences().len());
    for _ in 0..np {
        g.add_node(true);
    }
    for _ in 0..registry.company_count() {
        g.add_node(false);
    }
    for inf in registry.influences() {
        g.add_edge(
            tpiin_graph::NodeId::from_index(inf.person.index()),
            tpiin_graph::NodeId::from_index(np + inf.company.index()),
            (),
        );
    }
    check_bipartite(&g, |_, &is_person| is_person)
        .expect("influence records always run person -> company by construction");
    g
}

/// Builds the person-syndicate partition: connected components of `G1`.
/// This is the fixed point of the paper's one-edge-at-a-time
/// interdependence contraction (`G12 -> G12'`).
pub fn person_syndicates(registry: &SourceRegistry) -> Partition {
    Partition::from_merge_pairs(
        registry.person_count(),
        registry.interdependencies().iter().map(|i| {
            (
                tpiin_graph::NodeId::from_index(i.a.index()),
                tpiin_graph::NodeId::from_index(i.b.index()),
            )
        }),
    )
}

/// Builds `GI` (a.k.a. `G3`), the investment graph over companies.
pub fn build_investment_graph(registry: &SourceRegistry) -> DiGraph<(), f64> {
    let mut g = DiGraph::with_capacity(registry.company_count(), registry.investments().len());
    for _ in 0..registry.company_count() {
        g.add_node(());
    }
    for inv in registry.investments() {
        g.add_edge(
            tpiin_graph::NodeId::from_index(inv.investor.index()),
            tpiin_graph::NodeId::from_index(inv.investee.index()),
            inv.share,
        );
    }
    g
}

/// Builds the company-syndicate partition: Tarjan SCCs of the investment
/// graph (the paper's strongly-connected-subgraph contraction that turns
/// `G_B` into the antecedent DAG `G123`).
pub fn company_syndicates(registry: &SourceRegistry) -> Partition {
    let gi = build_investment_graph(registry);
    let (labels, count) = tpiin_graph::condensation_partition(&gi);
    Partition::from_labels(labels, count)
}

/// Builds `G4`, the trading graph over companies.
pub fn build_trading_graph(registry: &SourceRegistry) -> DiGraph<(), f64> {
    let mut g = DiGraph::with_capacity(registry.company_count(), registry.tradings().len());
    for _ in 0..registry.company_count() {
        g.add_node(());
    }
    for tr in registry.tradings() {
        g.add_edge(
            tpiin_graph::NodeId::from_index(tr.seller.index()),
            tpiin_graph::NodeId::from_index(tr.buyer.index()),
            tr.volume,
        );
    }
    g
}

/// Edge payload of the combined graph `G12`: an undirected
/// interdependence link or a directed influence arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum G12Edge {
    /// Kinship/interlocking link between two persons (undirected;
    /// stored with arbitrary orientation).
    Interdependence(InterdependenceKind),
    /// Person -> Company influence arc.
    Influence,
}

/// Builds `G12 = G1 + G2`: persons then companies as nodes, with both
/// interdependence links and influence arcs.  This is the graph the
/// paper's edge-contraction process starts from.
pub fn build_g12(registry: &SourceRegistry) -> DiGraph<IsPerson, G12Edge> {
    let np = registry.person_count();
    let mut g = DiGraph::with_capacity(
        np + registry.company_count(),
        registry.interdependencies().len() + registry.influences().len(),
    );
    for _ in 0..np {
        g.add_node(true);
    }
    for _ in 0..registry.company_count() {
        g.add_node(false);
    }
    for i in registry.interdependencies() {
        g.add_edge(
            tpiin_graph::NodeId::from_index(i.a.index()),
            tpiin_graph::NodeId::from_index(i.b.index()),
            G12Edge::Interdependence(i.kind),
        );
    }
    for inf in registry.influences() {
        g.add_edge(
            tpiin_graph::NodeId::from_index(inf.person.index()),
            tpiin_graph::NodeId::from_index(np + inf.company.index()),
            G12Edge::Influence,
        );
    }
    g
}

/// Builds `G12'`: the result of contracting every interdependence edge of
/// `G12` into person syndicates.  Returns the contracted graph (node
/// payload = `IsPerson`, arcs all influence) plus the syndicate members.
///
/// The Appendix A properties hold by construction and are debug-checked:
/// the graph is bipartite, persons keep indegree zero, companies keep
/// outdegree zero.
pub fn build_g12_prime(
    registry: &SourceRegistry,
) -> tpiin_graph::ContractionOutcome<IsPerson, G12Edge> {
    let np = registry.person_count();
    let g12 = build_g12(registry);
    // Extend the person partition with identity groups for companies.
    let person_part = person_syndicates(registry);
    let mut labels: Vec<u32> = (0..g12.node_count() as u32).collect();
    for (p, label) in labels.iter_mut().enumerate().take(np) {
        *label = person_part
            .group_of(tpiin_graph::NodeId::from_index(p))
            .index() as u32;
    }
    // Company labels must stay dense after person groups.
    let groups = person_part.group_count();
    for (k, label) in labels.iter_mut().enumerate().skip(np) {
        *label = (groups + (k - np)) as u32;
    }
    let part = Partition::from_labels(labels, groups + registry.company_count());
    let mut outcome = part.quotient(&g12, |members| {
        // A group is a person syndicate iff its first member is a person.
        members[0].index() < np
    });
    // Interdependence edges between merged persons were dropped as
    // internal; any surviving interdependence edge joins two *distinct*
    // syndicates, which contradicts the person partition.
    debug_assert_eq!(
        outcome.dropped_internal_edges,
        registry.interdependencies().len(),
        "every interdependence edge is internal to a syndicate"
    );
    // Drop the weight distinction: remaining edges are influence arcs.
    debug_assert!(outcome
        .graph
        .edges()
        .all(|e| *e.weight == G12Edge::Influence));
    debug_assert!(
        check_bipartite(&outcome.graph, |_, &is_person| is_person).is_ok(),
        "G12' must stay Person -> Company bipartite"
    );
    outcome.members.truncate(outcome.graph.node_count());
    outcome
}

/// Edge payload of `G_B`: influence (from `G12'`) or investment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GbEdge {
    /// Person-syndicate -> Company influence.
    Influence,
    /// Company -> Company investment (major shareholding fraction).
    Investment(f64),
}

/// Builds `G_B = G12' + GI`: the combined graph on which the paper runs
/// the strongly-connected-subgraph contraction.  Node ids: person
/// syndicates first (as in [`build_g12_prime`]), then companies.
pub fn build_gb(registry: &SourceRegistry) -> DiGraph<IsPerson, GbEdge> {
    let g12p = build_g12_prime(registry);
    let n_person_nodes = g12p.graph.nodes().filter(|(_, &p)| p).count();
    let mut g = DiGraph::with_capacity(
        g12p.graph.node_count(),
        g12p.graph.edge_count() + registry.investments().len(),
    );
    for (_, &is_person) in g12p.graph.nodes() {
        g.add_node(is_person);
    }
    for e in g12p.graph.edges() {
        g.add_edge(e.source, e.target, GbEdge::Influence);
    }
    for inv in registry.investments() {
        g.add_edge(
            tpiin_graph::NodeId::from_index(n_person_nodes + inv.investor.index()),
            tpiin_graph::NodeId::from_index(n_person_nodes + inv.investee.index()),
            GbEdge::Investment(inv.share),
        );
    }
    g
}

/// Builds `G123`, the antecedent network: `G_B` with every strongly
/// connected investment subgraph contracted into a company syndicate.
/// All arcs are (re)colored as influence; the result is a DAG
/// (debug-checked, proved in Appendix A).
pub fn build_antecedent(
    registry: &SourceRegistry,
) -> tpiin_graph::ContractionOutcome<IsPerson, GbEdge> {
    let gb = build_gb(registry);
    let n_person_nodes = gb.nodes().filter(|(_, &p)| p).count();
    let company_part = company_syndicates(registry);
    // Person-syndicate nodes keep identity labels; company nodes take
    // their SCC label, offset past the person groups.
    let mut labels: Vec<u32> = Vec::with_capacity(gb.node_count());
    for k in 0..gb.node_count() {
        if k < n_person_nodes {
            labels.push(k as u32);
        } else {
            let scc = company_part
                .group_of(tpiin_graph::NodeId::from_index(k - n_person_nodes))
                .index();
            labels.push((n_person_nodes + scc) as u32);
        }
    }
    let part = Partition::from_labels(labels, n_person_nodes + company_part.group_count());
    let outcome = part.quotient(&gb, |members| members[0].index() < n_person_nodes);
    debug_assert!(
        tpiin_graph::is_acyclic(&outcome.graph),
        "antecedent network must be a DAG after SCC contraction"
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_graph::NodeId;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InvestmentRecord, Role, RoleSet, TradingRecord,
    };

    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        let d1 = r.add_person("D1", RoleSet::of(&[Role::Director]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        for (p, c) in [(l1, c1), (l2, c2), (l2, c3)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_influence(InfluenceRecord {
            person: d1,
            company: c1,
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
        r.add_interdependence(l1, l2, InterdependenceKind::Kinship);
        // C2 <-> C3 mutual investment: one SCC.
        r.add_investment(InvestmentRecord {
            investor: c2,
            investee: c3,
            share: 0.6,
        });
        r.add_investment(InvestmentRecord {
            investor: c3,
            investee: c2,
            share: 0.5,
        });
        r.add_trading(TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 10.0,
        });
        r
    }

    #[test]
    fn g1_has_person_nodes_and_interdependence_edges() {
        let r = registry();
        let g1 = build_g1(&r);
        assert_eq!(g1.node_count(), 3);
        assert_eq!(g1.edge_count(), 1);
    }

    #[test]
    fn g2_is_bipartite_with_person_sources() {
        let r = registry();
        let g2 = build_g2(&r);
        assert_eq!(g2.node_count(), 6);
        assert_eq!(g2.edge_count(), 4);
        for v in g2.node_ids() {
            if *g2.node(v) {
                assert_eq!(g2.in_degree(v), 0, "person {v:?} must have indegree 0");
            } else {
                assert_eq!(g2.out_degree(v), 0, "company {v:?} must have outdegree 0");
            }
        }
    }

    #[test]
    fn person_syndicates_merge_kin() {
        let r = registry();
        let p = person_syndicates(&r);
        assert_eq!(p.group_count(), 2);
        assert_eq!(
            p.group_of(NodeId::from_index(0)),
            p.group_of(NodeId::from_index(1))
        );
        assert_ne!(
            p.group_of(NodeId::from_index(0)),
            p.group_of(NodeId::from_index(2))
        );
    }

    #[test]
    fn company_syndicates_contract_mutual_investment() {
        let r = registry();
        let p = company_syndicates(&r);
        assert_eq!(p.group_count(), 2);
        assert_eq!(
            p.group_of(NodeId::from_index(1)),
            p.group_of(NodeId::from_index(2))
        );
    }

    #[test]
    fn g12_combines_both_edge_kinds() {
        let r = registry();
        let g12 = build_g12(&r);
        assert_eq!(g12.node_count(), 6);
        let inter = g12
            .edges()
            .filter(|e| matches!(e.weight, G12Edge::Interdependence(_)))
            .count();
        let infl = g12
            .edges()
            .filter(|e| *e.weight == G12Edge::Influence)
            .count();
        assert_eq!(inter, 1);
        assert_eq!(infl, 4);
    }

    #[test]
    fn g12_prime_contracts_interdependence_into_syndicates() {
        let r = registry();
        let out = build_g12_prime(&r);
        // 3 persons -> 2 syndicates, 3 companies: 5 nodes.
        assert_eq!(out.graph.node_count(), 5);
        assert_eq!(out.dropped_internal_edges, 1);
        // All remaining arcs are influence and bipartite.
        assert!(out.graph.edges().all(|e| *e.weight == G12Edge::Influence));
        assert!(check_bipartite(&out.graph, |_, &p| p).is_ok());
        // The L1+L2 syndicate has two members.
        let sizes: Vec<usize> = out.members.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
    }

    #[test]
    fn gb_adds_investment_arcs_between_companies() {
        let r = registry();
        let gb = build_gb(&r);
        let invest = gb
            .edges()
            .filter(|e| matches!(e.weight, GbEdge::Investment(_)))
            .count();
        assert_eq!(invest, 2);
        // Investment arcs join two company nodes.
        for e in gb.edges() {
            if matches!(e.weight, GbEdge::Investment(_)) {
                assert!(!gb.node(e.source));
                assert!(!gb.node(e.target));
            }
        }
    }

    #[test]
    fn antecedent_contracts_the_investment_cycle_and_is_a_dag() {
        let r = registry();
        let out = build_antecedent(&r);
        // 2 person syndicates + 2 company nodes (C2+C3 merged).
        assert_eq!(out.graph.node_count(), 4);
        assert!(tpiin_graph::is_acyclic(&out.graph));
        // The two arcs of the C2<->C3 cycle became internal.
        assert_eq!(out.dropped_internal_edges, 2);
        let merged = out.members.iter().filter(|m| m.len() == 2).count();
        assert_eq!(merged, 1, "exactly the investment SCC merged");
    }

    #[test]
    fn stagewise_antecedent_matches_fused_pipeline() {
        // The explicit stage chain and the one-pass `fuse` must agree on
        // antecedent shape (node count; arc count may differ only by
        // duplicate deduplication in fuse()).
        let r = registry();
        let staged = build_antecedent(&r);
        let (tpiin, report) = crate::fuse(&r).unwrap();
        assert_eq!(staged.graph.node_count(), tpiin.node_count());
        assert_eq!(
            staged.graph.node_count(),
            report.person_syndicate_count + report.company_syndicate_count
        );
        assert!(staged.graph.edge_count() >= report.influence_arcs);
    }

    #[test]
    fn trading_graph_carries_volume() {
        let r = registry();
        let g4 = build_trading_graph(&r);
        assert_eq!(g4.edge_count(), 1);
        let e = g4.edges().next().unwrap();
        assert_eq!(*e.weight, 10.0);
    }
}
