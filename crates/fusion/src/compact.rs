//! Small-buffer payload types for TPIIN nodes.
//!
//! A nation-scale TPIIN holds 10⁵–10⁶ nodes, and almost every node is a
//! plain (non-syndicate) entity: its label is a short generated name and
//! its member list is a singleton.  Storing those as `String` + `Vec`
//! costs two heap allocations per node — at ~50 ns a malloc that is the
//! dominant cost of materializing a binary snapshot, and a large slice
//! of the fusion pipeline's footprint.  [`Label`] and [`Members`] keep
//! the common case inline in the node slot and spill to the heap only
//! for long syndicate labels or merged member lists.
//!
//! Both types compare, hash and print exactly like the `str` / slice
//! they represent, so the storage layout is invisible to snapshots,
//! JSON reports and tests.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;

/// Labels up to this many bytes are stored inline in the node slot.
pub const INLINE_LABEL_BYTES: usize = 22;

/// A node display label: inline for short strings (the overwhelmingly
/// common case), heap-spilled otherwise.
#[derive(Clone)]
pub enum Label {
    /// The label bytes live inside the enum slot.
    Inline {
        /// Number of meaningful bytes in `bytes`.
        len: u8,
        /// UTF-8 payload, zero-padded past `len`.
        bytes: [u8; INLINE_LABEL_BYTES],
    },
    /// The label was too long to inline.
    Spilled(String),
}

impl Label {
    /// Builds a label, inlining it when it fits.
    pub fn new(s: &str) -> Label {
        if s.len() <= INLINE_LABEL_BYTES {
            let mut bytes = [0u8; INLINE_LABEL_BYTES];
            bytes[..s.len()].copy_from_slice(s.as_bytes());
            Label::Inline {
                len: s.len() as u8,
                bytes,
            }
        } else {
            Label::Spilled(s.to_owned())
        }
    }

    /// The label text.
    #[inline]
    pub fn as_str(&self) -> &str {
        match self {
            Label::Inline { len, bytes } => {
                // Construction only ever copies whole `str`s, so the
                // prefix is valid UTF-8 by invariant.
                std::str::from_utf8(&bytes[..*len as usize]).expect("inline label is UTF-8")
            }
            Label::Spilled(s) => s,
        }
    }

    /// Heap bytes owned by this label (zero when inline).
    pub fn spilled_bytes(&self) -> usize {
        match self {
            Label::Inline { .. } => 0,
            Label::Spilled(s) => s.capacity(),
        }
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Label {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Label {
        if s.len() <= INLINE_LABEL_BYTES {
            Label::new(&s)
        } else {
            Label::Spilled(s)
        }
    }
}

impl Deref for Label {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Label) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Label {}

impl std::hash::Hash for Label {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// The workspace's serde is a marker-trait stub (all JSON surfaces are
// hand-written), so these impls carry no behavior — they keep `Label`
// usable anywhere the old `String` field's derives were relied on.
impl Serialize for Label {}

impl<'de> Deserialize<'de> for Label {}

/// Member lists up to this many entries are stored inline.
pub const INLINE_MEMBERS: usize = 2;

/// Provenance member ids of a TPIIN node: inline for up to
/// [`INLINE_MEMBERS`] entries (non-syndicate nodes are singletons),
/// heap-spilled for larger syndicates.
#[derive(Clone)]
pub enum Members<T> {
    /// The ids live inside the enum slot.
    Inline {
        /// Number of meaningful entries in `items`.
        len: u8,
        /// Payload; entries past `len` duplicate the first id.
        items: [T; INLINE_MEMBERS],
    },
    /// Empty or too many members to inline.
    Spilled(Vec<T>),
}

impl<T: Copy> Members<T> {
    /// Builds a member list, inlining it when it fits.
    pub fn from_slice(items: &[T]) -> Members<T> {
        match *items {
            [a] => Members::Inline {
                len: 1,
                items: [a, a],
            },
            [a, b] => Members::Inline {
                len: 2,
                items: [a, b],
            },
            // An empty Vec does not allocate, so `[]` spills for free.
            _ => Members::Spilled(items.to_vec()),
        }
    }

    /// The member ids as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Members::Inline { len, items } => &items[..*len as usize],
            Members::Spilled(v) => v,
        }
    }

    /// The member ids as a freshly allocated `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// Heap bytes owned by this list (zero when inline).
    pub fn spilled_bytes(&self) -> usize {
        match self {
            Members::Inline { .. } => 0,
            Members::Spilled(v) => v.capacity() * std::mem::size_of::<T>(),
        }
    }
}

impl<T: Copy> From<Vec<T>> for Members<T> {
    fn from(v: Vec<T>) -> Members<T> {
        if v.len() <= INLINE_MEMBERS {
            Members::from_slice(&v)
        } else {
            Members::Spilled(v)
        }
    }
}

impl<T: Copy> FromIterator<T> for Members<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Members<T> {
        let mut iter = iter.into_iter();
        let Some(a) = iter.next() else {
            return Members::Spilled(Vec::new());
        };
        let Some(b) = iter.next() else {
            return Members::Inline {
                len: 1,
                items: [a, a],
            };
        };
        match iter.next() {
            None => Members::Inline {
                len: 2,
                items: [a, b],
            },
            Some(c) => {
                let mut v = vec![a, b, c];
                v.extend(iter);
                Members::Spilled(v)
            }
        }
    }
}

impl<T> Deref for Members<T>
where
    T: Copy,
{
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + PartialEq> PartialEq for Members<T> {
    fn eq(&self, other: &Members<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq> Eq for Members<T> {}

impl<T: Copy + fmt::Debug> fmt::Debug for Members<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Serialize> Serialize for Members<T> {}

impl<'de, T: Copy + Deserialize<'de>> Deserialize<'de> for Members<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_labels_stay_inline() {
        let l = Label::new("C-Shaanxi-42");
        assert!(matches!(l, Label::Inline { .. }));
        assert_eq!(l.as_str(), "C-Shaanxi-42");
        assert_eq!(l.spilled_bytes(), 0);
        assert_eq!(l, Label::from("C-Shaanxi-42".to_string()));
    }

    #[test]
    fn long_labels_spill() {
        let name = "Very Long Syndicate+Of Many+Member Names";
        let l = Label::from(name.to_string());
        assert!(matches!(l, Label::Spilled(_)));
        assert_eq!(l.as_str(), name);
        assert!(l.spilled_bytes() >= name.len());
        assert_eq!(format!("{l}"), name);
    }

    #[test]
    fn inline_boundary_is_exact() {
        let at = "x".repeat(INLINE_LABEL_BYTES);
        let over = "x".repeat(INLINE_LABEL_BYTES + 1);
        assert!(matches!(Label::new(&at), Label::Inline { .. }));
        assert!(matches!(Label::new(&over), Label::Spilled(_)));
    }

    #[test]
    fn members_inline_and_spill() {
        let single = Members::from_slice(&[7u32]);
        assert_eq!(&*single, &[7]);
        assert_eq!(single.spilled_bytes(), 0);
        let pair: Members<u32> = [1, 2].into_iter().collect();
        assert_eq!(&*pair, &[1, 2]);
        assert_eq!(pair.spilled_bytes(), 0);
        let big: Members<u32> = (0..5).collect();
        assert_eq!(&*big, &[0, 1, 2, 3, 4]);
        assert!(big.spilled_bytes() >= 5 * 4);
        let empty = Members::<u32>::from_slice(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.spilled_bytes(), 0);
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: Members<u32> = vec![1, 2].into();
        let spilled = Members::Spilled(vec![1, 2]);
        assert_eq!(inline, spilled);
        assert_eq!(Label::new("ab"), Label::Spilled("ab".to_string()));
    }
}
