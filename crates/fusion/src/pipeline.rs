//! The end-to-end fusion pipeline: `SourceRegistry -> TPIIN`.

use crate::report::{FusionReport, StageTiming};
use crate::stages;
use crate::tpiin::{ArcColor, IntraSyndicateTrade, Tpiin, TpiinArc, TpiinNode};
use std::collections::HashSet;
use tpiin_graph::{DiGraph, NodeId};
use tpiin_model::{ModelError, SourceRegistry};
use tpiin_obs::TimedScope;

/// Failure while fusing a registry into a TPIIN.
#[derive(Debug)]
pub enum FusionError {
    /// The registry failed structural validation; all violations listed.
    InvalidRegistry(Vec<ModelError>),
    /// The antecedent network contained a directed cycle after SCC
    /// contraction.  Appendix A proves this cannot happen for valid input;
    /// reaching it indicates a bug or hand-built inconsistent data.
    AntecedentNotAcyclic,
}

impl std::fmt::Display for FusionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionError::InvalidRegistry(errs) => {
                write!(
                    f,
                    "source registry failed validation with {} error(s); first: {}",
                    errs.len(),
                    errs.first().map(|e| e.to_string()).unwrap_or_default()
                )
            }
            FusionError::AntecedentNotAcyclic => {
                f.write_str("antecedent network is not acyclic after SCC contraction")
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// Fuses the source records of `registry` into a [`Tpiin`].
///
/// Pipeline (Section 4.1):
/// 1. validate the registry;
/// 2. contract interdependence-connected persons into person syndicates
///    (`G12 -> G12'`);
/// 3. contract strongly connected investment subgraphs into company
///    syndicates (`G_B -> G123`), folding investment arcs into influence;
/// 4. attach trading arcs (`G4`), diverting trades internal to a company
///    syndicate into [`Tpiin::intra_syndicate_trades`];
/// 5. freeze the finished topology into the two-lane CSR snapshot the
///    mining phase iterates ([`Tpiin::csr`]);
/// 6. verify the antecedent network is a DAG (read off the frozen
///    influence lane).
///
/// Influence arcs occupy edge ids `0..influence_arc_count` and trading
/// arcs the remainder, matching the edge-list layout of Algorithm 1.
/// Parallel arcs of equal color are deduplicated (first occurrence wins).
///
/// # Example
///
/// ```
/// use tpiin_fusion::fuse;
/// use tpiin_model::{InfluenceKind, InfluenceRecord, Role, RoleSet,
///                   SourceRegistry, TradingRecord};
///
/// let mut registry = SourceRegistry::new();
/// let boss = registry.add_person("Boss", RoleSet::of(&[Role::Ceo]));
/// let a = registry.add_company("A");
/// let b = registry.add_company("B");
/// for company in [a, b] {
///     registry.add_influence(InfluenceRecord {
///         person: boss, company,
///         kind: InfluenceKind::CeoOf, is_legal_person: true,
///     });
/// }
/// registry.add_trading(TradingRecord { seller: a, buyer: b, volume: 1.0 });
///
/// let (tpiin, report) = fuse(&registry).unwrap();
/// assert_eq!(tpiin.node_count(), 3);
/// assert_eq!(report.influence_arcs, 2);
/// assert_eq!(report.trading_arcs, 1);
/// ```
pub fn fuse(registry: &SourceRegistry) -> Result<(Tpiin, FusionReport), FusionError> {
    let whole = TimedScope::start();
    let mut stage_timings = Vec::with_capacity(6);
    let mut time_stage = |stage: &str, scope: TimedScope| {
        let elapsed = scope.finish(&format!("fusion/{stage}"));
        stage_timings.push(StageTiming {
            stage: stage.to_string(),
            nanos: elapsed.as_nanos().min(u64::MAX as u128) as u64,
        });
    };

    let scope = TimedScope::start();
    let validation = registry.validate();
    time_stage("validate", scope);
    validation.map_err(FusionError::InvalidRegistry)?;

    // --- G12 -> G12': contract interdependence-connected persons. ---
    let scope = TimedScope::start();
    let person_part = stages::person_syndicates(registry);
    let n_person_nodes = person_part.group_count();
    let mut person_members: Vec<Vec<tpiin_model::PersonId>> = vec![Vec::new(); n_person_nodes];
    for (pid, _) in registry.persons() {
        person_members[person_part
            .group_of(NodeId::from_index(pid.index()))
            .index()]
        .push(pid);
    }
    time_stage("contract_persons", scope);
    tpiin_obs::debug!(
        "contract_persons: {} persons -> {} syndicates",
        registry.person_count(),
        n_person_nodes
    );

    // --- G_B -> G123: contract investment SCCs, build the antecedent
    // network (nodes + influence/investment arcs). ---
    let scope = TimedScope::start();
    let company_part = stages::company_syndicates(registry);
    let n_company_nodes = company_part.group_count();
    let mut company_members: Vec<Vec<tpiin_model::CompanyId>> = vec![Vec::new(); n_company_nodes];
    for (cid, _) in registry.companies() {
        company_members[company_part
            .group_of(NodeId::from_index(cid.index()))
            .index()]
        .push(cid);
    }

    let mut graph: DiGraph<TpiinNode, TpiinArc> = DiGraph::with_capacity(
        n_person_nodes + n_company_nodes,
        registry.influences().len() + registry.investments().len() + registry.tradings().len(),
    );

    let mut person_syndicates_merged = 0;
    for members in &person_members {
        if members.len() > 1 {
            person_syndicates_merged += 1;
        }
        let label = members
            .iter()
            .map(|&p| registry.person(p).name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        graph.add_node(TpiinNode::Person {
            label,
            members: members.clone(),
        });
    }
    let mut company_syndicates_merged = 0;
    for members in &company_members {
        if members.len() > 1 {
            company_syndicates_merged += 1;
        }
        let label = members
            .iter()
            .map(|&c| registry.company(c).name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        graph.add_node(TpiinNode::Company {
            label,
            members: members.clone(),
        });
    }

    // Node lookup tables back from source ids.
    let person_node: Vec<NodeId> = registry
        .persons()
        .map(|(pid, _)| person_part.group_of(NodeId::from_index(pid.index())))
        .collect();
    let company_node: Vec<NodeId> = registry
        .companies()
        .map(|(cid, _)| {
            NodeId::from_index(
                n_person_nodes
                    + company_part
                        .group_of(NodeId::from_index(cid.index()))
                        .index(),
            )
        })
        .collect();

    // --- Arcs: influence (G2 + investment), then trading. ---
    let mut seen: HashSet<(u32, u32, u8)> = HashSet::with_capacity(graph.edge_count());
    let mut duplicate_arcs_dropped = 0usize;
    let mut add_arc = |graph: &mut DiGraph<TpiinNode, TpiinArc>,
                       s: NodeId,
                       t: NodeId,
                       color: ArcColor,
                       weight: f64|
     -> bool {
        let sig = (s.index() as u32, t.index() as u32, color.code() as u8);
        if seen.insert(sig) {
            graph.add_edge(s, t, TpiinArc { color, weight });
            true
        } else {
            duplicate_arcs_dropped += 1;
            false
        }
    };

    for inf in registry.influences() {
        add_arc(
            &mut graph,
            person_node[inf.person.index()],
            company_node[inf.company.index()],
            ArcColor::Influence,
            1.0,
        );
    }
    let mut internal_investment_arcs_dropped = 0usize;
    for inv in registry.investments() {
        let s = company_node[inv.investor.index()];
        let t = company_node[inv.investee.index()];
        if s == t {
            internal_investment_arcs_dropped += 1;
            continue;
        }
        add_arc(&mut graph, s, t, ArcColor::Influence, inv.share);
    }
    let influence_arc_count = graph.edge_count();
    time_stage("contract_sccs", scope);
    tpiin_obs::debug!(
        "contract_sccs: {} companies -> {} syndicates, {} influence arcs",
        registry.company_count(),
        n_company_nodes,
        influence_arc_count
    );

    // --- G123 + G4 -> TPIIN: attach trading arcs. ---
    let scope = TimedScope::start();
    let mut intra_syndicate_trades = Vec::new();
    for tr in registry.tradings() {
        let s = company_node[tr.seller.index()];
        let t = company_node[tr.buyer.index()];
        if s == t {
            intra_syndicate_trades.push(IntraSyndicateTrade {
                seller: tr.seller,
                buyer: tr.buyer,
                syndicate: s,
                volume: tr.volume,
            });
            continue;
        }
        add_arc(&mut graph, s, t, ArcColor::Trading, tr.volume);
    }
    let trading_arc_count = graph.edge_count() - influence_arc_count;
    time_stage("attach_trading", scope);

    // --- Freeze: pack the finished topology into the two-lane CSR the
    // mining phase iterates (trading lane + influence lane). ---
    let scope = TimedScope::start();
    let tpiin = Tpiin::assemble(
        graph,
        person_node,
        company_node,
        influence_arc_count,
        trading_arc_count,
        intra_syndicate_trades,
    );
    time_stage("freeze", scope);

    // --- Verify the antecedent network is a DAG (Appendix A), straight
    // off the frozen influence lane. ---
    let scope = TimedScope::start();
    let acyclic = tpiin.csr().is_acyclic(crate::tpiin::INFLUENCE_LANE);
    time_stage("verify_dag", scope);
    if !acyclic {
        return Err(FusionError::AntecedentNotAcyclic);
    }
    let report = FusionReport {
        persons: registry.person_count(),
        companies: registry.company_count(),
        interdependence_edges: registry.interdependencies().len(),
        influence_records: registry.influences().len(),
        investment_records: registry.investments().len(),
        trading_records: registry.tradings().len(),
        person_syndicate_count: n_person_nodes,
        person_syndicates_merged,
        company_syndicate_count: n_company_nodes,
        company_syndicates_merged,
        internal_investment_arcs_dropped,
        duplicate_arcs_dropped,
        influence_arcs: tpiin.influence_arc_count,
        trading_arcs: tpiin.trading_arc_count,
        intra_syndicate_trades: tpiin.intra_syndicate_trades.len(),
        tpiin_nodes: tpiin.node_count(),
        mean_degree: tpiin.mean_degree(),
        stage_timings,
    };
    let total = whole.finish("fusion");
    tpiin_obs::info!(
        "fused {} nodes / {} arcs in {:?}",
        report.tpiin_nodes,
        report.influence_arcs + report.trading_arcs,
        total
    );
    Ok((tpiin, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpiin::NodeColor;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
        TradingRecord,
    };

    /// A registry reproducing the core of the paper's Fig. 7: kin legal
    /// persons L6/LB, an investment cycle, and trading.
    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l6 = r.add_person("L6", RoleSet::of(&[Role::Ceo]));
        let lb = r.add_person("LB", RoleSet::of(&[Role::Ceo]));
        let l9 = r.add_person("L9", RoleSet::of(&[Role::Chairman]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        let c4 = r.add_company("C4");
        for (p, c) in [(l6, c1), (lb, c2), (l9, c3)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_influence(InfluenceRecord {
            person: l9,
            company: c4,
            kind: InfluenceKind::ChairmanOf,
            is_legal_person: true,
        });
        r.add_interdependence(l6, lb, InterdependenceKind::Kinship);
        // C3 <-> C4 mutual investment cycle.
        r.add_investment(InvestmentRecord {
            investor: c3,
            investee: c4,
            share: 0.7,
        });
        r.add_investment(InvestmentRecord {
            investor: c4,
            investee: c3,
            share: 0.7,
        });
        // External investment into the cycle.
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c3,
            share: 0.6,
        });
        // Trading: external and internal to the SCC.
        r.add_trading(TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 5.0,
        });
        r.add_trading(TradingRecord {
            seller: c3,
            buyer: c4,
            volume: 7.0,
        });
        r
    }

    #[test]
    fn fuse_contracts_persons_and_scc() {
        let (tpiin, report) = fuse(&registry()).unwrap();
        // L6+LB merged; L9 alone => 2 person nodes. C3+C4 merged => 3 company nodes.
        assert_eq!(report.person_syndicate_count, 2);
        assert_eq!(report.person_syndicates_merged, 1);
        assert_eq!(report.company_syndicate_count, 3);
        assert_eq!(report.company_syndicates_merged, 1);
        assert_eq!(tpiin.node_count(), 5);
        // Syndicate labels concatenate member names.
        let labels: Vec<&str> = tpiin.graph.nodes().map(|(_, n)| n.label()).collect();
        assert!(labels.contains(&"L6+LB"));
        assert!(labels.contains(&"C3+C4"));
    }

    #[test]
    fn intra_scc_trade_is_separated() {
        let (tpiin, report) = fuse(&registry()).unwrap();
        assert_eq!(report.intra_syndicate_trades, 1);
        assert_eq!(tpiin.intra_syndicate_trades.len(), 1);
        let t = tpiin.intra_syndicate_trades[0];
        assert_eq!((t.seller.index(), t.buyer.index()), (2, 3));
        // Only the external trade remains as a trading arc.
        assert_eq!(tpiin.trading_arc_count, 1);
    }

    #[test]
    fn influence_arcs_precede_trading_arcs() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        let colors: Vec<ArcColor> = tpiin.graph.edges().map(|e| e.weight.color).collect();
        let first_trading = colors.iter().position(|&c| c == ArcColor::Trading);
        if let Some(ft) = first_trading {
            assert!(colors[..ft].iter().all(|&c| c == ArcColor::Influence));
            assert!(colors[ft..].iter().all(|&c| c == ArcColor::Trading));
        }
        assert_eq!(
            tpiin.influence_arc_count + tpiin.trading_arc_count,
            colors.len()
        );
    }

    #[test]
    fn internal_investment_arcs_dropped_and_counted() {
        let (_, report) = fuse(&registry()).unwrap();
        // The two arcs of the C3<->C4 cycle are internal to the syndicate.
        assert_eq!(report.internal_investment_arcs_dropped, 2);
    }

    #[test]
    fn persons_have_indegree_zero_companies_receive_influence() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        for v in tpiin.graph.node_ids() {
            match tpiin.color(v) {
                NodeColor::Person => assert_eq!(tpiin.graph.in_degree(v), 0),
                NodeColor::Company => assert!(tpiin.graph.in_degree(v) >= 1),
            }
        }
    }

    #[test]
    fn duplicate_influence_arcs_are_deduplicated() {
        // Base registry: L9 is legal person of both C3 and C4, which merge
        // into one syndicate -> the second arc is already a duplicate.
        let (_, base_report) = fuse(&registry()).unwrap();
        assert_eq!(base_report.duplicate_arcs_dropped, 1);

        let mut r = registry();
        // L9 is also a director of C3 -> a third record onto the same arc.
        r.add_influence(InfluenceRecord {
            person: tpiin_model::PersonId(2),
            company: tpiin_model::CompanyId(2),
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
        let (_, report) = fuse(&r).unwrap();
        assert_eq!(
            report.duplicate_arcs_dropped,
            base_report.duplicate_arcs_dropped + 1
        );
    }

    #[test]
    fn invalid_registry_is_rejected() {
        let mut r = SourceRegistry::new();
        r.add_company("orphan");
        match fuse(&r) {
            Err(FusionError::InvalidRegistry(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected InvalidRegistry, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_lists_influence_rows_first() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        let listing = tpiin.edge_list();
        let rows: Vec<&str> = listing.lines().collect();
        assert_eq!(rows.len(), tpiin.graph.edge_count());
        // Influence rows end with "1", trading rows with "0".
        assert!(rows[..tpiin.influence_arc_count]
            .iter()
            .all(|r| r.ends_with('1')));
        assert!(rows[tpiin.influence_arc_count..]
            .iter()
            .all(|r| r.ends_with('0')));
    }

    #[test]
    fn stage_timings_cover_the_pipeline_in_order() {
        let (_, report) = fuse(&registry()).unwrap();
        let stages: Vec<&str> = report
            .stage_timings
            .iter()
            .map(|t| t.stage.as_str())
            .collect();
        assert_eq!(
            stages,
            [
                "validate",
                "contract_persons",
                "contract_sccs",
                "attach_trading",
                "freeze",
                "verify_dag"
            ]
        );
        assert!(report.summary().contains("t(contract_sccs): "));
    }

    #[test]
    fn mean_degree_matches_definition() {
        let (tpiin, report) = fuse(&registry()).unwrap();
        let expect = tpiin.graph.edge_count() as f64 / tpiin.graph.node_count() as f64;
        assert!((report.mean_degree - expect).abs() < 1e-12);
    }
}
