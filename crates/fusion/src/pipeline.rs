//! The end-to-end fusion pipeline: `SourceRegistry -> TPIIN`.

use crate::compact::{Label, Members};
use crate::par;
use crate::report::{FusionReport, StageTiming};
use crate::tpiin::{ArcColor, IntraSyndicateTrade, Tpiin, TpiinArc, TpiinNode};
use tpiin_graph::{DiGraph, NodeId, SccScratch, UnionFind};
use tpiin_model::{CompanyId, ModelError, PersonId, SourceRegistry};
use tpiin_obs::TimedScope;

/// Failure while fusing a registry into a TPIIN.
#[derive(Debug)]
pub enum FusionError {
    /// The registry failed structural validation; all violations listed.
    InvalidRegistry(Vec<ModelError>),
    /// The antecedent network contained a directed cycle after SCC
    /// contraction.  Appendix A proves this cannot happen for valid input;
    /// reaching it indicates a bug or hand-built inconsistent data.
    AntecedentNotAcyclic,
}

impl std::fmt::Display for FusionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionError::InvalidRegistry(errs) => {
                write!(
                    f,
                    "source registry failed validation with {} error(s); first: {}",
                    errs.len(),
                    errs.first().map(|e| e.to_string()).unwrap_or_default()
                )
            }
            FusionError::AntecedentNotAcyclic => {
                f.write_str("antecedent network is not acyclic after SCC contraction")
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// Tuning knobs for [`fuse_with`].
#[derive(Clone, Copy, Debug)]
pub struct FuseOptions {
    /// Worker threads for the parallel stages.  `1` (the default) runs
    /// the pipeline fully serial; `0` means one worker per available
    /// core; any other value is taken literally, so tests can force the
    /// parallel code path even on a single-core host.
    pub threads: usize,
}

impl Default for FuseOptions {
    fn default() -> Self {
        FuseOptions { threads: 1 }
    }
}

impl FuseOptions {
    /// Options from the environment: `TPIIN_THREADS` picks the worker
    /// count (`0` = one per core); unset or unparsable falls back to one
    /// worker per core.
    pub fn from_env() -> Self {
        let threads = std::env::var("TPIIN_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        FuseOptions { threads }
    }
}

/// One candidate TPIIN arc before deduplication: the packed `(src <<
/// 32) | dst` endpoint key, the record sequence number, and the source
/// weight.  Color is implicit — influence and trading candidates live in
/// separate partitions throughout.
#[derive(Clone, Copy)]
struct ArcItem {
    key: u64,
    seq: u32,
    weight: f64,
}

#[inline]
fn pack_key(s: NodeId, t: NodeId) -> u64 {
    ((s.index() as u64) << 32) | t.index() as u64
}

/// Sort-based first-occurrence-wins deduplication of one color
/// partition: sort by `(key, seq)`, keep the lowest-sequence item per
/// key, then restore sequence order so the surviving arcs enter the
/// graph exactly where a scan with a hash-set membership test would have
/// placed them.  Returns the number of duplicates dropped.
fn dedup_first_wins(workers: usize, items: &mut Vec<ArcItem>) -> usize {
    let before = items.len();
    par::par_sort_unstable_by_key(workers, items, |it| (it.key, it.seq));
    items.dedup_by_key(|it| it.key);
    par::par_sort_unstable_by_key(workers, items, |it| it.seq);
    before - items.len()
}

/// Fuses the source records of `registry` into a [`Tpiin`], fully
/// serially.  Equivalent to [`fuse_with`] at the default options; see
/// there for the stage-by-stage description.
///
/// # Example
///
/// ```
/// use tpiin_fusion::fuse;
/// use tpiin_model::{InfluenceKind, InfluenceRecord, Role, RoleSet,
///                   SourceRegistry, TradingRecord};
///
/// let mut registry = SourceRegistry::new();
/// let boss = registry.add_person("Boss", RoleSet::of(&[Role::Ceo]));
/// let a = registry.add_company("A");
/// let b = registry.add_company("B");
/// for company in [a, b] {
///     registry.add_influence(InfluenceRecord {
///         person: boss, company,
///         kind: InfluenceKind::CeoOf, is_legal_person: true,
///     });
/// }
/// registry.add_trading(TradingRecord { seller: a, buyer: b, volume: 1.0 });
///
/// let (tpiin, report) = fuse(&registry).unwrap();
/// assert_eq!(tpiin.node_count(), 3);
/// assert_eq!(report.influence_arcs, 2);
/// assert_eq!(report.trading_arcs, 1);
/// ```
pub fn fuse(registry: &SourceRegistry) -> Result<(Tpiin, FusionReport), FusionError> {
    fuse_with(registry, FuseOptions::default())
}

/// Fuses the source records of `registry` into a [`Tpiin`].
///
/// Pipeline (Section 4.1):
/// 1. validate the registry (per-record-type sweeps, one worker each);
/// 2. contract interdependence-connected persons into person syndicates
///    via union–find (`G12 -> G12'`);
/// 3. contract strongly connected investment subgraphs into company
///    syndicates (`G_B -> G123`), folding investment arcs into influence
///    — Tarjan runs independently per weak component of the investment
///    graph, spread over the workers;
/// 4. attach trading arcs (`G4`), diverting trades internal to a company
///    syndicate into [`Tpiin::intra_syndicate_trades`];
/// 5. freeze the finished topology into the two-lane CSR snapshot the
///    mining phase iterates ([`Tpiin::csr`]);
/// 6. verify the antecedent network is a DAG (read off the frozen
///    influence lane).
///
/// Influence arcs occupy edge ids `0..influence_arc_count` and trading
/// arcs the remainder, matching the edge-list layout of Algorithm 1.
/// Parallel arcs of equal color are deduplicated (first occurrence wins)
/// by sorting packed `(src, dst)` keys instead of probing a hash set.
///
/// The result is **identical at every thread count**: company syndicates
/// are numbered by their minimum source-company member (in first-
/// appearance order over `CompanyId`), which depends only on component
/// membership, and arc deduplication keys on record sequence numbers —
/// so no stage's output depends on traversal or completion order.
pub fn fuse_with(
    registry: &SourceRegistry,
    options: FuseOptions,
) -> Result<(Tpiin, FusionReport), FusionError> {
    let workers = par::resolve_threads(options.threads);
    let whole = TimedScope::start();
    let mut stage_timings = Vec::with_capacity(6);
    let mut time_stage = |stage: &str, scope: TimedScope| {
        let elapsed = scope.finish(&format!("fusion/{stage}"));
        stage_timings.push(StageTiming {
            stage: stage.to_string(),
            nanos: elapsed.as_nanos().min(u64::MAX as u128) as u64,
        });
    };

    // --- Validate: four independent per-record-type sweeps. ---
    let scope = TimedScope::start();
    let validation = if workers > 1 {
        type Sweep<'a> = Box<dyn FnOnce() -> Vec<ModelError> + Send + 'a>;
        let sweeps: Vec<Sweep> = vec![
            Box::new(|| registry.validate_interdependencies()),
            Box::new(|| registry.validate_influences()),
            Box::new(|| registry.validate_investments()),
            Box::new(|| registry.validate_tradings()),
        ];
        let errors: Vec<ModelError> = par::run_jobs(workers, sweeps)
            .into_iter()
            .flatten()
            .collect();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    } else {
        registry.validate()
    };
    time_stage("validate", scope);
    validation.map_err(FusionError::InvalidRegistry)?;

    // --- G12 -> G12': contract interdependence-connected persons. ---
    let scope = TimedScope::start();
    let np = registry.person_count();
    let mut person_uf = UnionFind::new(np);
    for i in registry.interdependencies() {
        person_uf.union(i.a.index(), i.b.index());
    }
    let (person_labels, n_person_nodes) = person_uf.into_labels();
    let mut person_members: Vec<Vec<PersonId>> = vec![Vec::new(); n_person_nodes];
    for (p, &label) in person_labels.iter().enumerate() {
        person_members[label as usize].push(PersonId(p as u32));
    }
    time_stage("contract_persons", scope);
    tpiin_obs::debug!(
        "contract_persons: {} persons -> {} syndicates",
        np,
        n_person_nodes
    );

    // --- G_B -> G123: contract investment SCCs, build the antecedent
    // network (nodes + influence/investment arcs). ---
    let scope = TimedScope::start();
    let nc = registry.company_count();
    let (company_labels, n_company_nodes) = company_scc_labels(registry, workers);
    let mut company_members: Vec<Vec<CompanyId>> = vec![Vec::new(); n_company_nodes];
    for (c, &label) in company_labels.iter().enumerate() {
        company_members[label as usize].push(CompanyId(c as u32));
    }

    // Node payloads: the `+`-joined label strings dominate this phase,
    // so format them in parallel chunks; nodes are appended serially in
    // group order afterwards.
    let mut person_syndicates_merged = 0;
    let mut company_syndicates_merged = 0;
    for members in &person_members {
        if members.len() > 1 {
            person_syndicates_merged += 1;
        }
    }
    for members in &company_members {
        if members.len() > 1 {
            company_syndicates_merged += 1;
        }
    }
    let person_payloads: Vec<TpiinNode> = par::map_chunks(workers, &person_members, |_, chunk| {
        chunk
            .iter()
            .map(|members| TpiinNode::Person {
                label: join_labels(members.iter().map(|&p| registry.person(p).name.as_str())),
                members: Members::from_slice(members),
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let company_payloads: Vec<TpiinNode> =
        par::map_chunks(workers, &company_members, |_, chunk| {
            chunk
                .iter()
                .map(|members| TpiinNode::Company {
                    label: join_labels(members.iter().map(|&c| registry.company(c).name.as_str())),
                    members: Members::from_slice(members),
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

    let mut graph: DiGraph<TpiinNode, TpiinArc> = DiGraph::with_capacity(
        n_person_nodes + n_company_nodes,
        registry.influences().len() + registry.investments().len() + registry.tradings().len(),
    );
    for payload in person_payloads {
        graph.add_node(payload);
    }
    for payload in company_payloads {
        graph.add_node(payload);
    }

    // Node lookup tables back from source ids.
    let person_node: Vec<NodeId> = person_labels
        .iter()
        .map(|&l| NodeId::from_index(l as usize))
        .collect();
    let company_node: Vec<NodeId> = company_labels
        .iter()
        .map(|&l| NodeId::from_index(n_person_nodes + l as usize))
        .collect();

    // --- Arcs: influence (G2 + investment), then trading.  Candidates
    // are gathered per color partition with their record sequence
    // numbers, then deduplicated by sort. ---
    let influences = registry.influences();
    let influence_candidates: Vec<Vec<ArcItem>> =
        par::map_chunks(workers, influences, |start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, inf)| ArcItem {
                    key: pack_key(
                        person_node[inf.person.index()],
                        company_node[inf.company.index()],
                    ),
                    seq: (start + i) as u32,
                    weight: 1.0,
                })
                .collect::<Vec<_>>()
        });
    let investment_candidates: Vec<(Vec<ArcItem>, usize)> =
        par::map_chunks(workers, registry.investments(), |start, chunk| {
            let mut items = Vec::with_capacity(chunk.len());
            let mut internal = 0usize;
            for (i, inv) in chunk.iter().enumerate() {
                let s = company_node[inv.investor.index()];
                let t = company_node[inv.investee.index()];
                if s == t {
                    internal += 1;
                    continue;
                }
                items.push(ArcItem {
                    key: pack_key(s, t),
                    seq: (influences.len() + start + i) as u32,
                    weight: inv.share,
                });
            }
            (items, internal)
        });
    let internal_investment_arcs_dropped: usize =
        investment_candidates.iter().map(|(_, n)| n).sum();
    let mut influence_items: Vec<ArcItem> = influence_candidates
        .into_iter()
        .chain(investment_candidates.into_iter().map(|(items, _)| items))
        .flatten()
        .collect();
    let mut duplicate_arcs_dropped = dedup_first_wins(workers, &mut influence_items);
    // Per-edge provenance: the winning record sequence of each surviving
    // arc, aligned with the edge ids `add_edge` hands out below.
    let mut arc_sources: Vec<u32> =
        Vec::with_capacity(influence_items.len() + registry.tradings().len());
    for it in &influence_items {
        graph.add_edge(
            NodeId::from_index((it.key >> 32) as usize),
            NodeId::from_index((it.key & u32::MAX as u64) as usize),
            TpiinArc {
                color: ArcColor::Influence,
                weight: it.weight,
            },
        );
        arc_sources.push(it.seq);
    }
    let influence_arc_count = graph.edge_count();
    time_stage("contract_sccs", scope);
    tpiin_obs::debug!(
        "contract_sccs: {} companies -> {} syndicates, {} influence arcs",
        nc,
        n_company_nodes,
        influence_arc_count
    );

    // --- G123 + G4 -> TPIIN: attach trading arcs. ---
    let scope = TimedScope::start();
    let mut intra_syndicate_trades = Vec::new();
    let mut trading_items: Vec<ArcItem> = Vec::with_capacity(registry.tradings().len());
    for (seq, tr) in registry.tradings().iter().enumerate() {
        let s = company_node[tr.seller.index()];
        let t = company_node[tr.buyer.index()];
        if s == t {
            intra_syndicate_trades.push(IntraSyndicateTrade {
                seller: tr.seller,
                buyer: tr.buyer,
                syndicate: s,
                volume: tr.volume,
            });
            continue;
        }
        trading_items.push(ArcItem {
            key: pack_key(s, t),
            seq: seq as u32,
            weight: tr.volume,
        });
    }
    duplicate_arcs_dropped += dedup_first_wins(workers, &mut trading_items);
    for it in &trading_items {
        graph.add_edge(
            NodeId::from_index((it.key >> 32) as usize),
            NodeId::from_index((it.key & u32::MAX as u64) as usize),
            TpiinArc {
                color: ArcColor::Trading,
                weight: it.weight,
            },
        );
        arc_sources.push(it.seq);
    }
    let trading_arc_count = graph.edge_count() - influence_arc_count;
    time_stage("attach_trading", scope);

    // --- Freeze: pack the finished topology into the two-lane CSR the
    // mining phase iterates (trading lane + influence lane). ---
    let scope = TimedScope::start();
    let tpiin = Tpiin::assemble(
        graph,
        person_node,
        company_node,
        influence_arc_count,
        trading_arc_count,
        intra_syndicate_trades,
        arc_sources,
    );
    time_stage("freeze", scope);

    // --- Verify the antecedent network is a DAG (Appendix A), straight
    // off the frozen influence lane. ---
    let scope = TimedScope::start();
    let acyclic = tpiin.csr().is_acyclic(crate::tpiin::INFLUENCE_LANE);
    time_stage("verify_dag", scope);
    if !acyclic {
        return Err(FusionError::AntecedentNotAcyclic);
    }
    let report = FusionReport {
        persons: registry.person_count(),
        companies: registry.company_count(),
        interdependence_edges: registry.interdependencies().len(),
        influence_records: registry.influences().len(),
        investment_records: registry.investments().len(),
        trading_records: registry.tradings().len(),
        person_syndicate_count: n_person_nodes,
        person_syndicates_merged,
        company_syndicate_count: n_company_nodes,
        company_syndicates_merged,
        internal_investment_arcs_dropped,
        duplicate_arcs_dropped,
        influence_arcs: tpiin.influence_arc_count,
        trading_arcs: tpiin.trading_arc_count,
        intra_syndicate_trades: tpiin.intra_syndicate_trades.len(),
        tpiin_nodes: tpiin.node_count(),
        mean_degree: tpiin.mean_degree(),
        stage_timings,
    };
    let total = whole.finish("fusion");
    tpiin_obs::info!(
        "fused {} nodes / {} arcs in {:?} ({} workers)",
        report.tpiin_nodes,
        report.influence_arcs + report.trading_arcs,
        total,
        workers
    );
    Ok((tpiin, report))
}

pub(crate) fn join_labels<'a>(mut names: impl Iterator<Item = &'a str>) -> Label {
    let first = names.next().unwrap_or_default();
    let Some(second) = names.next() else {
        // Singleton — the overwhelmingly common case: the label inlines
        // into the node slot without ever building a `String`.
        return Label::new(first);
    };
    let mut label = String::from(first);
    label.push('+');
    label.push_str(second);
    for name in names {
        label.push('+');
        label.push_str(name);
    }
    Label::from(label)
}

/// Company-syndicate labelling: Tarjan SCCs of the investment graph,
/// numbered canonically by first appearance of each SCC's minimum member
/// over `CompanyId` order.  With more than one worker the investment
/// graph is split into weak components (closed under edges), spread
/// greedily over the workers, and each worker runs Tarjan over its
/// components with private scratch state on the shared CSR; the
/// min-member representatives make the merged labelling independent of
/// the split.
fn company_scc_labels(registry: &SourceRegistry, workers: usize) -> (Vec<u32>, usize) {
    let nc = registry.company_count();
    let investments = registry.investments();

    // Flat CSR of the investment graph (counting sort over sources).
    let mut offsets = vec![0u32; nc + 1];
    for inv in investments {
        offsets[inv.investor.index() + 1] += 1;
    }
    for i in 0..nc {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; investments.len()];
    for inv in investments {
        let s = inv.investor.index();
        targets[cursor[s] as usize] = inv.investee.0;
        cursor[s] += 1;
    }

    // SCC representative (minimum member) per company.
    let mut reps: Vec<u32> = (0..nc as u32).collect();
    if workers > 1 && nc > 1 {
        // Weak components of the investment graph; each is closed under
        // investment arcs, so Tarjan never crosses between them.
        let mut wcc = UnionFind::new(nc);
        for inv in investments {
            wcc.union(inv.investor.index(), inv.investee.index());
        }
        let (comp_of, n_comps) = wcc.into_labels();
        // Group companies by component (counting sort).
        let mut comp_size = vec![0u32; n_comps];
        for &comp in &comp_of {
            comp_size[comp as usize] += 1;
        }
        let mut comp_start = vec![0u32; n_comps + 1];
        for (i, &size) in comp_size.iter().enumerate() {
            comp_start[i + 1] = comp_start[i] + size;
        }
        let mut comp_cursor = comp_start.clone();
        let mut comp_nodes = vec![0u32; nc];
        for (v, &comp) in comp_of.iter().enumerate() {
            comp_nodes[comp_cursor[comp as usize] as usize] = v as u32;
            comp_cursor[comp as usize] += 1;
        }
        // Greedy longest-processing-time assignment of components to
        // workers: biggest first onto the least-loaded worker.
        let mut order: Vec<u32> = (0..n_comps as u32).collect();
        order.sort_unstable_by_key(|&c| std::cmp::Reverse(comp_size[c as usize]));
        let mut subsets: Vec<Vec<u32>> = vec![Vec::new(); workers];
        let mut load = vec![0usize; workers];
        for comp in order {
            let w = (0..workers).min_by_key(|&w| load[w]).expect("workers > 1");
            let start = comp_start[comp as usize] as usize;
            let end = comp_start[comp as usize + 1] as usize;
            subsets[w].extend_from_slice(&comp_nodes[start..end]);
            load[w] += end - start;
        }
        let (offsets, targets) = (&offsets, &targets);
        let pair_lists: Vec<Vec<(u32, u32)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = subsets
                .iter()
                .filter(|subset| !subset.is_empty())
                .map(|subset| {
                    scope.spawn(move |_| {
                        let mut scratch = SccScratch::new(nc);
                        let mut pairs = Vec::with_capacity(subset.len());
                        scratch.run(offsets, targets, subset, |v, rep| pairs.push((v, rep)));
                        pairs
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scc worker panicked"))
                .collect()
        })
        .expect("scc scope");
        for pairs in pair_lists {
            for (v, rep) in pairs {
                reps[v as usize] = rep;
            }
        }
    } else if nc > 0 {
        let all: Vec<u32> = (0..nc as u32).collect();
        let mut scratch = SccScratch::new(nc);
        scratch.run(&offsets, &targets, &all, |v, rep| reps[v as usize] = rep);
    }

    // Canonical dense labels: first appearance of each representative.
    let mut rank = vec![u32::MAX; nc];
    let mut labels = vec![0u32; nc];
    let mut count = 0u32;
    for c in 0..nc {
        let rep = reps[c] as usize;
        if rank[rep] == u32::MAX {
            rank[rep] = count;
            count += 1;
        }
        labels[c] = rank[rep];
    }
    (labels, count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpiin::NodeColor;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
        TradingRecord,
    };

    /// A registry reproducing the core of the paper's Fig. 7: kin legal
    /// persons L6/LB, an investment cycle, and trading.
    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l6 = r.add_person("L6", RoleSet::of(&[Role::Ceo]));
        let lb = r.add_person("LB", RoleSet::of(&[Role::Ceo]));
        let l9 = r.add_person("L9", RoleSet::of(&[Role::Chairman]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        let c4 = r.add_company("C4");
        for (p, c) in [(l6, c1), (lb, c2), (l9, c3)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_influence(InfluenceRecord {
            person: l9,
            company: c4,
            kind: InfluenceKind::ChairmanOf,
            is_legal_person: true,
        });
        r.add_interdependence(l6, lb, InterdependenceKind::Kinship);
        // C3 <-> C4 mutual investment cycle.
        r.add_investment(InvestmentRecord {
            investor: c3,
            investee: c4,
            share: 0.7,
        });
        r.add_investment(InvestmentRecord {
            investor: c4,
            investee: c3,
            share: 0.7,
        });
        // External investment into the cycle.
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c3,
            share: 0.6,
        });
        // Trading: external and internal to the SCC.
        r.add_trading(TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 5.0,
        });
        r.add_trading(TradingRecord {
            seller: c3,
            buyer: c4,
            volume: 7.0,
        });
        r
    }

    #[test]
    fn fuse_contracts_persons_and_scc() {
        let (tpiin, report) = fuse(&registry()).unwrap();
        // L6+LB merged; L9 alone => 2 person nodes. C3+C4 merged => 3 company nodes.
        assert_eq!(report.person_syndicate_count, 2);
        assert_eq!(report.person_syndicates_merged, 1);
        assert_eq!(report.company_syndicate_count, 3);
        assert_eq!(report.company_syndicates_merged, 1);
        assert_eq!(tpiin.node_count(), 5);
        // Syndicate labels concatenate member names.
        let labels: Vec<&str> = tpiin.graph.nodes().map(|(_, n)| n.label()).collect();
        assert!(labels.contains(&"L6+LB"));
        assert!(labels.contains(&"C3+C4"));
    }

    #[test]
    fn company_nodes_follow_min_member_order() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        // Person syndicates first (L6+LB, L9), then companies numbered by
        // minimum member: C1, C2, then the C3+C4 syndicate.
        let labels: Vec<&str> = tpiin.graph.nodes().map(|(_, n)| n.label()).collect();
        assert_eq!(labels, ["L6+LB", "L9", "C1", "C2", "C3+C4"]);
    }

    #[test]
    fn intra_scc_trade_is_separated() {
        let (tpiin, report) = fuse(&registry()).unwrap();
        assert_eq!(report.intra_syndicate_trades, 1);
        assert_eq!(tpiin.intra_syndicate_trades.len(), 1);
        let t = tpiin.intra_syndicate_trades[0];
        assert_eq!((t.seller.index(), t.buyer.index()), (2, 3));
        // Only the external trade remains as a trading arc.
        assert_eq!(tpiin.trading_arc_count, 1);
    }

    #[test]
    fn influence_arcs_precede_trading_arcs() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        let colors: Vec<ArcColor> = tpiin.graph.edges().map(|e| e.weight.color).collect();
        let first_trading = colors.iter().position(|&c| c == ArcColor::Trading);
        if let Some(ft) = first_trading {
            assert!(colors[..ft].iter().all(|&c| c == ArcColor::Influence));
            assert!(colors[ft..].iter().all(|&c| c == ArcColor::Trading));
        }
        assert_eq!(
            tpiin.influence_arc_count + tpiin.trading_arc_count,
            colors.len()
        );
    }

    #[test]
    fn internal_investment_arcs_dropped_and_counted() {
        let (_, report) = fuse(&registry()).unwrap();
        // The two arcs of the C3<->C4 cycle are internal to the syndicate.
        assert_eq!(report.internal_investment_arcs_dropped, 2);
    }

    #[test]
    fn persons_have_indegree_zero_companies_receive_influence() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        for v in tpiin.graph.node_ids() {
            match tpiin.color(v) {
                NodeColor::Person => assert_eq!(tpiin.graph.in_degree(v), 0),
                NodeColor::Company => assert!(tpiin.graph.in_degree(v) >= 1),
            }
        }
    }

    #[test]
    fn duplicate_influence_arcs_are_deduplicated() {
        // Base registry: L9 is legal person of both C3 and C4, which merge
        // into one syndicate -> the second arc is already a duplicate.
        let (_, base_report) = fuse(&registry()).unwrap();
        assert_eq!(base_report.duplicate_arcs_dropped, 1);

        let mut r = registry();
        // L9 is also a director of C3 -> a third record onto the same arc.
        r.add_influence(InfluenceRecord {
            person: tpiin_model::PersonId(2),
            company: tpiin_model::CompanyId(2),
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
        let (_, report) = fuse(&r).unwrap();
        assert_eq!(
            report.duplicate_arcs_dropped,
            base_report.duplicate_arcs_dropped + 1
        );
    }

    #[test]
    fn first_duplicate_occurrence_wins_weight_and_position() {
        // Two investments over the same contracted endpoints: the first
        // record's share must be the kept arc weight.
        let mut r = SourceRegistry::new();
        let p = r.add_person("P", RoleSet::of(&[Role::Ceo]));
        let a = r.add_company("A");
        let b = r.add_company("B");
        for company in [a, b] {
            r.add_influence(InfluenceRecord {
                person: p,
                company,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_investment(InvestmentRecord {
            investor: a,
            investee: b,
            share: 0.3,
        });
        r.add_investment(InvestmentRecord {
            investor: a,
            investee: b,
            share: 0.9,
        });
        let (tpiin, report) = fuse(&r).unwrap();
        assert_eq!(report.duplicate_arcs_dropped, 1);
        let kept: Vec<f64> = tpiin
            .graph
            .edges()
            .filter(|e| e.weight.weight != 1.0)
            .map(|e| e.weight.weight)
            .collect();
        assert_eq!(kept, [0.3], "first occurrence wins");
    }

    #[test]
    fn parallel_fusion_matches_serial_exactly() {
        let r = registry();
        let (serial, serial_report) = fuse(&r).unwrap();
        for threads in [2, 4] {
            let (par, par_report) = fuse_with(&r, FuseOptions { threads }).unwrap();
            assert_eq!(par.node_count(), serial.node_count());
            assert_eq!(par.edge_list(), serial.edge_list(), "threads = {threads}");
            assert_eq!(par.person_node, serial.person_node);
            assert_eq!(par.company_node, serial.company_node);
            assert_eq!(par.intra_syndicate_trades, serial.intra_syndicate_trades);
            assert_eq!(par.arc_sources, serial.arc_sources);
            assert_eq!(
                par_report.duplicate_arcs_dropped,
                serial_report.duplicate_arcs_dropped
            );
            let labels: Vec<&str> = par.graph.nodes().map(|(_, n)| n.label()).collect();
            let serial_labels: Vec<&str> = serial.graph.nodes().map(|(_, n)| n.label()).collect();
            assert_eq!(labels, serial_labels);
        }
    }

    #[test]
    fn arc_sources_record_the_winning_record_sequence() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        assert_eq!(tpiin.arc_sources.len(), tpiin.graph.edge_count());
        assert!(tpiin.arc_sources.iter().all(|&s| s != u32::MAX));
        // Influence arcs: L6->C1 (record 0), LB->C2 (1), L9->C3+C4 (2;
        // the duplicate record 3 loses first-wins), C1->C3+C4 (investment
        // record 2, offset by the 4 influence records => 6).  Trading:
        // only record 0 survives (record 1 is intra-syndicate).
        assert_eq!(tpiin.arc_sources, [0, 1, 2, 6, 0]);
    }

    #[test]
    fn invalid_registry_is_rejected() {
        let mut r = SourceRegistry::new();
        r.add_company("orphan");
        match fuse(&r) {
            Err(FusionError::InvalidRegistry(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected InvalidRegistry, got {other:?}"),
        }
    }

    #[test]
    fn invalid_registry_reports_same_errors_at_any_thread_count() {
        let mut r = SourceRegistry::new();
        r.add_company("orphan");
        r.add_trading(TradingRecord {
            seller: tpiin_model::CompanyId(0),
            buyer: tpiin_model::CompanyId(0),
            volume: 1.0,
        });
        let serial = match fuse(&r) {
            Err(FusionError::InvalidRegistry(errs)) => errs,
            other => panic!("expected InvalidRegistry, got {other:?}"),
        };
        match fuse_with(&r, FuseOptions { threads: 4 }) {
            Err(FusionError::InvalidRegistry(errs)) => assert_eq!(errs, serial),
            other => panic!("expected InvalidRegistry, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_lists_influence_rows_first() {
        let (tpiin, _) = fuse(&registry()).unwrap();
        let listing = tpiin.edge_list();
        let rows: Vec<&str> = listing.lines().collect();
        assert_eq!(rows.len(), tpiin.graph.edge_count());
        // Influence rows end with "1", trading rows with "0".
        assert!(rows[..tpiin.influence_arc_count]
            .iter()
            .all(|r| r.ends_with('1')));
        assert!(rows[tpiin.influence_arc_count..]
            .iter()
            .all(|r| r.ends_with('0')));
    }

    #[test]
    fn stage_timings_cover_the_pipeline_in_order() {
        let (_, report) = fuse(&registry()).unwrap();
        let stages: Vec<&str> = report
            .stage_timings
            .iter()
            .map(|t| t.stage.as_str())
            .collect();
        assert_eq!(
            stages,
            [
                "validate",
                "contract_persons",
                "contract_sccs",
                "attach_trading",
                "freeze",
                "verify_dag"
            ]
        );
        assert!(report.summary().contains("t(contract_sccs): "));
    }

    #[test]
    fn mean_degree_matches_definition() {
        let (tpiin, report) = fuse(&registry()).unwrap();
        let expect = tpiin.graph.edge_count() as f64 / tpiin.graph.node_count() as f64;
        assert!((report.mean_degree - expect).abs() < 1e-12);
    }
}
