//! `tpiin-fusion` — multi-network fusion: from source records to a TPIIN.
//!
//! Section 4.1 of the paper derives the Taxpayer Interest Interacted
//! Network through a chain of homogeneous graphs and two contraction
//! passes:
//!
//! ```text
//! G1 (interdependence)  ┐
//! G2 (influence)        ┴─> G12 ──edge contraction──> G12'   (person syndicates)
//! GI (investment)       ──┐
//! G12'                   ─┴─> G_B ──SCC contraction──> G123  (antecedent DAG)
//! G4 (trading)           ──┐
//! G123                    ─┴────────────────────────> TPIIN
//! ```
//!
//! The result has two node colors (*Person*, *Company*) and two arc colors
//! (*Influence*, *Trading*).  [`fuse`] runs the whole pipeline and returns
//! the [`Tpiin`] plus a [`FusionReport`] with per-stage statistics (the
//! numbers behind Figs. 11–16).  The intermediate graphs are also exposed
//! individually in [`stages`] for tests and reporting.

pub mod compact;
pub mod incremental;
pub mod stages;

mod par;
mod pipeline;
mod report;
mod tpiin;
mod verify;

pub use pipeline::{fuse, fuse_with, FuseOptions, FusionError};
pub use report::{FusionReport, StageTiming};
pub use tpiin::{
    ArcColor, IntraSyndicateTrade, NodeColor, Tpiin, TpiinArc, TpiinNode, INFLUENCE_LANE,
    TRADING_LANE,
};
pub use verify::{verify_tpiin, PropertyCheck, VerificationReport};
