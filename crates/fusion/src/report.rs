//! Per-stage statistics of a fusion run (the numbers behind Figs. 11–16).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-clock duration of one fusion stage.
///
/// Stage names match the observability phase tree (`fusion/<stage>` in
/// `tpiin-obs`): `validate`, `contract_persons`, `contract_sccs`,
/// `attach_trading`, `freeze`, `verify_dag`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name.
    pub stage: String,
    /// Wall-clock nanoseconds spent in the stage.
    pub nanos: u64,
}

impl StageTiming {
    /// The timing as a [`Duration`].
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.nanos)
    }
}

/// Statistics gathered while fusing a [`tpiin_model::SourceRegistry`] into
/// a [`crate::Tpiin`].
///
/// The paper reports these for its province dataset: `G1` with 776
/// directors and 1350 legal persons (Fig. 11), `G2` adding 2452 companies
/// (Fig. 12), the investment graph `G3` (Fig. 13), the antecedent network
/// `G123` (Fig. 14), the trading network `G4` (Fig. 15) and the final
/// TPIIN with 4578 nodes (Fig. 16).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FusionReport {
    /// Source persons (directors + legal persons + others).
    pub persons: usize,
    /// Source companies (taxpayers).
    pub companies: usize,
    /// Interdependence edges in `G1` (kinship + interlocking, deduplicated).
    pub interdependence_edges: usize,
    /// Influence records in `G2`.
    pub influence_records: usize,
    /// Investment arcs in `G3`/`GI`.
    pub investment_records: usize,
    /// Trading arcs in `G4` (source records).
    pub trading_records: usize,
    /// Person nodes after interdependence contraction (`G12'`).
    pub person_syndicate_count: usize,
    /// Person syndicates that actually merged two or more persons.
    pub person_syndicates_merged: usize,
    /// Company nodes after SCC contraction (`G123`).
    pub company_syndicate_count: usize,
    /// Company syndicates that merged a strongly connected subgraph.
    pub company_syndicates_merged: usize,
    /// Investment arcs dropped because they were internal to an SCC.
    pub internal_investment_arcs_dropped: usize,
    /// Parallel/duplicate arcs removed during fusion.
    pub duplicate_arcs_dropped: usize,
    /// Influence arcs in the final TPIIN (antecedent network size).
    pub influence_arcs: usize,
    /// Trading arcs in the final TPIIN.
    pub trading_arcs: usize,
    /// Trading records internal to a company syndicate (suspicious by
    /// construction, kept separately).
    pub intra_syndicate_trades: usize,
    /// Total TPIIN nodes.
    pub tpiin_nodes: usize,
    /// `(influence_arcs + trading_arcs) / tpiin_nodes`.
    pub mean_degree: f64,
    /// Wall-clock timing of each pipeline stage, in execution order.
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub stage_timings: Vec<StageTiming>,
}

impl FusionReport {
    /// Renders a compact multi-line summary, one stage per line, plus a
    /// timing line per pipeline stage when timings were recorded.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "G1: {} persons, {} interdependence edges\n\
             G2: +{} companies, {} influence arcs\n\
             G12': {} person nodes ({} syndicates merged)\n\
             G3: {} investment arcs\n\
             G123: {} company nodes ({} SCCs contracted, {} internal arcs dropped)\n\
             G4: {} trading records ({} intra-syndicate)\n\
             TPIIN: {} nodes, {} influence + {} trading arcs, mean degree {:.3}",
            self.persons,
            self.interdependence_edges,
            self.companies,
            self.influence_records,
            self.person_syndicate_count,
            self.person_syndicates_merged,
            self.investment_records,
            self.company_syndicate_count,
            self.company_syndicates_merged,
            self.internal_investment_arcs_dropped,
            self.trading_records,
            self.intra_syndicate_trades,
            self.tpiin_nodes,
            self.influence_arcs,
            self.trading_arcs,
            self.mean_degree,
        );
        for t in &self.stage_timings {
            out.push_str(&format!(
                "\nt({}): {}",
                t.stage,
                tpiin_obs::profile::fmt_ns(t.nanos)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_all_stages() {
        let r = FusionReport {
            persons: 3,
            companies: 2,
            ..Default::default()
        };
        let s = r.summary();
        for stage in ["G1", "G2", "G12'", "G3", "G123", "G4", "TPIIN"] {
            assert!(s.contains(stage), "missing {stage} in summary");
        }
        // No timings recorded -> no timing lines.
        assert!(!s.contains("t("));
    }

    #[test]
    fn summary_appends_one_timing_line_per_stage() {
        let r = FusionReport {
            stage_timings: vec![
                StageTiming {
                    stage: "validate".to_string(),
                    nanos: 1_500,
                },
                StageTiming {
                    stage: "verify_dag".to_string(),
                    nanos: 2_000_000,
                },
            ],
            ..Default::default()
        };
        let s = r.summary();
        assert!(s.contains("t(validate): 1.5us"));
        assert!(s.contains("t(verify_dag): 2.000ms"));
        assert_eq!(r.stage_timings[1].duration(), Duration::from_millis(2));
    }
}
