//! The fused Taxpayer Interest Interacted Network (Definition 1).

use crate::compact::{Label, Members};
use serde::{Deserialize, Serialize};
use tpiin_graph::{CsrGraph, DiGraph, NodeId};
use tpiin_model::{CompanyId, PersonId};

/// CSR lane index of the trading arcs (the paper's edge-color code `0`).
pub const TRADING_LANE: usize = 0;
/// CSR lane index of the influence arcs (the paper's edge-color code `1`).
pub const INFLUENCE_LANE: usize = 1;

/// Node color of a TPIIN: `VColor = {Person, Company}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeColor {
    /// A person or a syndicate of persons (e.g. node `B` of Fig. 3(b)).
    Person,
    /// A company or a syndicate of mutually-investing companies.
    Company,
}

/// Arc color of a TPIIN: `EColor = {IN, TR}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArcColor {
    /// Influence relationship (directorship, legal-person link, or
    /// investment — the paper folds investment into influence in `G123`).
    Influence,
    /// Trading relationship between companies.
    Trading,
}

impl ArcColor {
    /// The numeric code used by the paper's edge-list representation:
    /// `0` for trading (black), `1` for influence (blue).
    pub fn code(self) -> u32 {
        match self {
            ArcColor::Trading => 0,
            ArcColor::Influence => 1,
        }
    }
}

/// Payload of a TPIIN node: color, display label and provenance (which
/// source persons/companies were merged into this node by contraction).
///
/// Labels and member lists use the small-buffer types from
/// [`crate::compact`], so plain (non-syndicate) nodes — the vast
/// majority at nation scale — carry no heap allocations at all.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpiinNode {
    /// A person node, possibly a syndicate of several source persons.
    Person {
        /// Display label — original name, or `+`-joined member names for
        /// syndicates.
        label: Label,
        /// Source persons merged into this node (singleton if no
        /// contraction applied).
        members: Members<PersonId>,
    },
    /// A company node, possibly a syndicate (contracted investment SCC).
    Company {
        /// Display label.
        label: Label,
        /// Source companies merged into this node.
        members: Members<CompanyId>,
    },
}

impl TpiinNode {
    /// The node's color.
    pub fn color(&self) -> NodeColor {
        match self {
            TpiinNode::Person { .. } => NodeColor::Person,
            TpiinNode::Company { .. } => NodeColor::Company,
        }
    }

    /// The node's display label.
    pub fn label(&self) -> &str {
        match self {
            TpiinNode::Person { label, .. } | TpiinNode::Company { label, .. } => label.as_str(),
        }
    }

    /// Whether the node merges more than one source entity.
    pub fn is_syndicate(&self) -> bool {
        match self {
            TpiinNode::Person { members, .. } => members.len() > 1,
            TpiinNode::Company { members, .. } => members.len() > 1,
        }
    }

    /// Heap bytes owned by this payload beyond its enum slot — zero for
    /// inline labels and member lists.
    pub fn spilled_bytes(&self) -> usize {
        match self {
            TpiinNode::Person { label, members } => label.spilled_bytes() + members.spilled_bytes(),
            TpiinNode::Company { label, members } => {
                label.spilled_bytes() + members.spilled_bytes()
            }
        }
    }
}

/// Payload of a TPIIN arc: color plus an optional weight used by the
/// weighted-scoring extension (investment share, trading volume; `1.0`
/// for positional influence).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TpiinArc {
    /// Arc color.
    pub color: ArcColor,
    /// Weight for the scoring extension.
    pub weight: f64,
}

/// A trading record whose two endpoints were merged into the same company
/// syndicate by SCC contraction.  By the paper's closing note in §4.3 such
/// a trade is suspicious *by construction*: strong connectivity guarantees
/// an influence trail between the parties.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntraSyndicateTrade {
    /// The selling company.
    pub seller: CompanyId,
    /// The buying company.
    pub buyer: CompanyId,
    /// TPIIN node of the syndicate both belong to.
    pub syndicate: NodeId,
    /// Trade volume from the source record.
    pub volume: f64,
}

/// The fused heterogeneous network (Definition 1):
/// `TPIIN = {V, E, VColor, EColor}` plus provenance back to the source
/// registry.
#[derive(Clone, Debug)]
pub struct Tpiin {
    /// The underlying colored digraph.  Person nodes come first, then
    /// company nodes; influence arcs come first, then trading arcs —
    /// matching the edge-list layout Algorithm 1 expects.
    pub graph: DiGraph<TpiinNode, TpiinArc>,
    /// TPIIN node of each source person.
    pub person_node: Vec<NodeId>,
    /// TPIIN node of each source company.
    pub company_node: Vec<NodeId>,
    /// Number of influence arcs (they occupy edge ids `0..`).
    pub influence_arc_count: usize,
    /// Number of trading arcs (they occupy the tail of the edge range).
    pub trading_arc_count: usize,
    /// Trades internal to a contracted investment SCC — suspicious by
    /// construction and excluded from the arc set (contraction drops
    /// intra-group arcs).
    pub intra_syndicate_trades: Vec<IntraSyndicateTrade>,
    /// Per-edge provenance, aligned with the graph's edge ids: the
    /// source-record sequence number whose arc survived first-wins
    /// dedup (influence/investment records index the influence feed,
    /// trading records the trading feed).  `u32::MAX` marks an arc with
    /// no recorded source (pre-v2 snapshots, streamed ingest).
    pub arc_sources: Vec<u32>,
    /// Frozen CSR snapshot of `graph`, with one lane per arc color
    /// ([`TRADING_LANE`], [`INFLUENCE_LANE`]).  The mining hot path
    /// (Algorithm 1 segmentation, Algorithm 2 tree DFS) iterates these
    /// packed slices instead of the mutable adjacency.  Kept private so it
    /// can only be set by [`Tpiin::assemble`] / [`Tpiin::refreeze`].
    csr: CsrGraph,
    /// Bytes of any flat snapshot buffer still backing this network
    /// (zero-copy binary loads); `0` for networks assembled from parsed
    /// records.  Counted by [`Tpiin::approx_heap_bytes`] so `/status`
    /// stays honest about what the served snapshot pins in memory.
    backing_bytes: u64,
}

impl Tpiin {
    /// Assembles a TPIIN from its parts, freezing the graph into the
    /// two-lane CSR snapshot in the same step.  `arc_sources` carries
    /// the winning source-record sequence per edge id; an empty vector
    /// is padded with the `u32::MAX` "unknown" sentinel.
    pub fn assemble(
        graph: DiGraph<TpiinNode, TpiinArc>,
        person_node: Vec<NodeId>,
        company_node: Vec<NodeId>,
        influence_arc_count: usize,
        trading_arc_count: usize,
        intra_syndicate_trades: Vec<IntraSyndicateTrade>,
        mut arc_sources: Vec<u32>,
    ) -> Tpiin {
        let csr = Self::freeze_graph(&graph);
        arc_sources.resize(graph.edge_count(), u32::MAX);
        Tpiin {
            graph,
            person_node,
            company_node,
            influence_arc_count,
            trading_arc_count,
            intra_syndicate_trades,
            arc_sources,
            csr,
            backing_bytes: 0,
        }
    }

    /// Like [`Tpiin::assemble`], but adopts an already-frozen CSR snapshot
    /// instead of re-running the counting sort.  Used by the binary
    /// snapshot loader, which ships the frozen lanes inside the file; the
    /// caller is responsible for `csr` actually matching `graph` (the
    /// loader cross-checks node and per-lane edge counts).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_frozen(
        graph: DiGraph<TpiinNode, TpiinArc>,
        person_node: Vec<NodeId>,
        company_node: Vec<NodeId>,
        influence_arc_count: usize,
        trading_arc_count: usize,
        intra_syndicate_trades: Vec<IntraSyndicateTrade>,
        mut arc_sources: Vec<u32>,
        csr: CsrGraph,
    ) -> Tpiin {
        arc_sources.resize(graph.edge_count(), u32::MAX);
        Tpiin {
            graph,
            person_node,
            company_node,
            influence_arc_count,
            trading_arc_count,
            intra_syndicate_trades,
            arc_sources,
            csr,
            backing_bytes: 0,
        }
    }

    /// Records that `bytes` of a flat snapshot buffer remain alive backing
    /// this network (zero-copy loads keep the file image mapped so slice
    /// views stay valid).  Reported through [`Tpiin::approx_heap_bytes`].
    pub fn set_backing_bytes(&mut self, bytes: u64) {
        self.backing_bytes = bytes;
    }

    /// Bytes of retained snapshot buffer (see [`Tpiin::set_backing_bytes`]).
    pub fn backing_bytes(&self) -> u64 {
        self.backing_bytes
    }

    fn freeze_graph(graph: &DiGraph<TpiinNode, TpiinArc>) -> CsrGraph {
        graph.freeze_lanes(2, |_, arc| arc.color.code() as usize)
    }

    /// The frozen CSR view of the network (lane [`TRADING_LANE`] holds the
    /// trading arcs, lane [`INFLUENCE_LANE`] the antecedent arcs).
    ///
    /// The snapshot is taken at assembly; after mutating [`Tpiin::graph`]
    /// directly (e.g. streaming ingestion), call [`Tpiin::refreeze`] to
    /// bring it back in sync.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Rebuilds the CSR snapshot after [`Tpiin::graph`] was mutated.
    pub fn refreeze(&mut self) {
        self.csr = Self::freeze_graph(&self.graph);
    }
    /// Number of TPIIN nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of person(-syndicate) nodes.
    pub fn person_node_count(&self) -> usize {
        self.graph
            .nodes()
            .filter(|(_, n)| n.color() == NodeColor::Person)
            .count()
    }

    /// Number of company(-syndicate) nodes.
    pub fn company_node_count(&self) -> usize {
        self.graph
            .nodes()
            .filter(|(_, n)| n.color() == NodeColor::Company)
            .count()
    }

    /// Color of a node.
    pub fn color(&self, node: NodeId) -> NodeColor {
        self.graph.node(node).color()
    }

    /// Display label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        self.graph.node(node).label()
    }

    /// The paper's `r x 3` edge-list rendering (`0` = trading, `1` =
    /// influence), antecedent rows first.
    pub fn edge_list(&self) -> String {
        tpiin_graph::edge_list(&self.graph, |arc| arc.color.code())
    }

    /// This network's heap footprint in bytes: the graph's own buffers
    /// (node slots, edge slots, adjacency rows — counted exactly via
    /// [`DiGraph::heap_bytes`], whichever adjacency layout is in use),
    /// spilled label/member allocations, the frozen CSR lanes (exact via
    /// [`CsrGraph::heap_bytes`]), provenance side tables, and any
    /// retained zero-copy snapshot buffer.  The `/status` endpoint
    /// reports it so operators can see how much of the process RSS the
    /// served snapshot accounts for.  "Approx" survives in the name only
    /// because `Vec` capacities can exceed lengths; every component is
    /// otherwise measured, not estimated.
    pub fn approx_heap_bytes(&self) -> u64 {
        let spilled_payloads: usize = self.graph.nodes().map(|(_, n)| n.spilled_bytes()).sum();
        let side_tables = self.person_node.len() * std::mem::size_of::<NodeId>()
            + self.company_node.len() * std::mem::size_of::<NodeId>()
            + self.arc_sources.len() * std::mem::size_of::<u32>()
            + self.intra_syndicate_trades.len() * std::mem::size_of::<IntraSyndicateTrade>();
        (self.graph.heap_bytes() + spilled_payloads + self.csr.heap_bytes() + side_tables) as u64
            + self.backing_bytes
    }

    /// Mean arcs-per-node, the "average node degree" column of Table 1.
    pub fn mean_degree(&self) -> f64 {
        if self.graph.node_count() == 0 {
            return 0.0;
        }
        self.graph.edge_count() as f64 / self.graph.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_color_codes_match_the_paper() {
        assert_eq!(ArcColor::Trading.code(), 0, "black");
        assert_eq!(ArcColor::Influence.code(), 1, "blue");
    }

    #[test]
    fn node_accessors() {
        let p = TpiinNode::Person {
            label: "L1".into(),
            members: vec![PersonId(0), PersonId(3)].into(),
        };
        assert_eq!(p.color(), NodeColor::Person);
        assert_eq!(p.label(), "L1");
        assert!(p.is_syndicate());
        let c = TpiinNode::Company {
            label: "C1".into(),
            members: vec![CompanyId(0)].into(),
        };
        assert_eq!(c.color(), NodeColor::Company);
        assert!(!c.is_syndicate());
    }
}
