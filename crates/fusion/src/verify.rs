//! On-demand verification of the Appendix A structural properties.
//!
//! `fuse` guarantees these by construction (and fails fast on the DAG
//! check), but data pipelines want an *audit trail*: a structured report
//! confirming each property on a concrete TPIIN, suitable for logging
//! next to the detection outputs.  [`verify_tpiin`] checks:
//!
//! 1. node colors partition the network (every node Person or Company);
//! 2. Person nodes have indegree zero; arcs never end at a Person;
//! 3. trading arcs connect Company nodes only;
//! 4. the antecedent network (influence arcs) is acyclic;
//! 5. every Company node has at least one incoming influence arc (the
//!    legal-person link survives fusion) — waivable for hand-built
//!    networks;
//! 6. no duplicate same-color arcs.

use crate::tpiin::{ArcColor, NodeColor, Tpiin};
use tpiin_graph::{is_acyclic, DiGraph};

/// One verified property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyCheck {
    /// Short name of the property.
    pub name: &'static str,
    /// Whether it holds.
    pub holds: bool,
    /// Explanation when violated (empty when it holds).
    pub detail: String,
}

/// The full verification report.
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Individual property results, in the order listed in the module
    /// docs.
    pub checks: Vec<PropertyCheck>,
}

impl VerificationReport {
    /// Whether every property holds.
    pub fn all_hold(&self) -> bool {
        self.checks.iter().all(|c| c.holds)
    }

    /// Multi-line rendering, one property per line.
    pub fn summary(&self) -> String {
        self.checks
            .iter()
            .map(|c| {
                if c.holds {
                    format!("[ok]   {}", c.name)
                } else {
                    format!("[FAIL] {}: {}", c.name, c.detail)
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Runs every Appendix A check against `tpiin`.
///
/// `require_legal_person_arcs` enables check 5; pass `false` for
/// hand-built networks that do not model legal persons.
pub fn verify_tpiin(tpiin: &Tpiin, require_legal_person_arcs: bool) -> VerificationReport {
    let mut checks = Vec::new();
    let mut push = |name: &'static str, violation: Option<String>| {
        checks.push(PropertyCheck {
            name,
            holds: violation.is_none(),
            detail: violation.unwrap_or_default(),
        });
    };

    // 2. Persons have indegree zero.
    let offender = tpiin
        .graph
        .node_ids()
        .find(|&v| tpiin.color(v) == NodeColor::Person && tpiin.graph.in_degree(v) > 0);
    push(
        "person indegree zero",
        offender.map(|v| format!("person node {} has incoming arcs", tpiin.label(v))),
    );

    // 3. Arc endpoints: everything ends at a company; trading arcs also
    // start at one.
    let mut bad_arc = None;
    for e in tpiin.graph.edges() {
        if tpiin.color(e.target) != NodeColor::Company {
            bad_arc = Some(format!(
                "arc {} -> {} ends at a person",
                tpiin.label(e.source),
                tpiin.label(e.target)
            ));
            break;
        }
        if e.weight.color == ArcColor::Trading && tpiin.color(e.source) != NodeColor::Company {
            bad_arc = Some(format!(
                "trading arc {} -> {} starts at a person",
                tpiin.label(e.source),
                tpiin.label(e.target)
            ));
            break;
        }
    }
    push("arc color endpoints", bad_arc);

    // 4. Antecedent network is a DAG.
    let mut antecedent: DiGraph<(), ()> = DiGraph::with_capacity(tpiin.node_count(), 0);
    for _ in 0..tpiin.node_count() {
        antecedent.add_node(());
    }
    for e in tpiin.graph.edges() {
        if e.weight.color == ArcColor::Influence {
            antecedent.add_edge(e.source, e.target, ());
        }
    }
    push(
        "antecedent network acyclic",
        (!is_acyclic(&antecedent)).then(|| "influence arcs contain a directed cycle".to_string()),
    );

    // 5. Companies keep a legal-person (influence) in-arc.
    if require_legal_person_arcs {
        let orphan = tpiin.graph.node_ids().find(|&v| {
            tpiin.color(v) == NodeColor::Company
                && !tpiin
                    .graph
                    .in_edges(v)
                    .any(|e| e.weight.color == ArcColor::Influence)
        });
        push(
            "companies influenced",
            orphan.map(|v| format!("company {} has no influence in-arc", tpiin.label(v))),
        );
    }

    // 6. No duplicate same-color arcs.
    let mut seen = std::collections::HashSet::new();
    let dup = tpiin
        .graph
        .edges()
        .find(|e| !seen.insert((e.source, e.target, e.weight.color.code())));
    push(
        "arcs deduplicated",
        dup.map(|e| {
            format!(
                "duplicate arc {} -> {}",
                tpiin.label(e.source),
                tpiin.label(e.target)
            )
        }),
    );

    VerificationReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::fuse;
    use crate::tpiin::TpiinArc;

    #[test]
    fn fused_networks_pass_all_checks() {
        let (tpiin, _) = fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let report = verify_tpiin(&tpiin, true);
        assert!(report.all_hold(), "{}", report.summary());
        assert!(report.summary().contains("[ok]"));
        assert_eq!(report.checks.len(), 5);
    }

    #[test]
    fn corrupted_network_is_caught() {
        let (mut tpiin, _) = fuse(&tpiin_datagen::fig7_registry()).unwrap();
        // Point a trading arc at a person node (graph is append-only, so
        // corrupt by adding a bogus arc).
        let person = tpiin
            .graph
            .node_ids()
            .find(|&v| tpiin.color(v) == NodeColor::Person)
            .unwrap();
        let company = tpiin
            .graph
            .node_ids()
            .find(|&v| tpiin.color(v) == NodeColor::Company)
            .unwrap();
        tpiin.graph.add_edge(
            company,
            person,
            TpiinArc {
                color: ArcColor::Trading,
                weight: 1.0,
            },
        );
        let report = verify_tpiin(&tpiin, true);
        assert!(!report.all_hold());
        assert!(report.summary().contains("[FAIL]"));
        let failed: Vec<_> = report
            .checks
            .iter()
            .filter(|c| !c.holds)
            .map(|c| c.name)
            .collect();
        assert!(failed.contains(&"person indegree zero"), "{failed:?}");
    }

    #[test]
    fn duplicate_arcs_are_caught() {
        let (mut tpiin, _) = fuse(&tpiin_datagen::case2_registry()).unwrap();
        let e = tpiin.graph.edges().next().unwrap();
        let (s, t, w) = (e.source, e.target, *e.weight);
        tpiin.graph.add_edge(s, t, w);
        let report = verify_tpiin(&tpiin, true);
        let dup = report
            .checks
            .iter()
            .find(|c| c.name == "arcs deduplicated")
            .unwrap();
        assert!(!dup.holds);
        assert!(dup.detail.contains("duplicate"));
    }

    #[test]
    fn legal_person_check_is_waivable() {
        // A bare company node with only trading arcs: fails check 5 when
        // required, passes when waived.
        let mut graph: tpiin_graph::DiGraph<crate::tpiin::TpiinNode, TpiinArc> =
            tpiin_graph::DiGraph::new();
        let a = graph.add_node(crate::tpiin::TpiinNode::Company {
            label: "A".into(),
            members: vec![tpiin_model::CompanyId(0)].into(),
        });
        let b = graph.add_node(crate::tpiin::TpiinNode::Company {
            label: "B".into(),
            members: vec![tpiin_model::CompanyId(1)].into(),
        });
        graph.add_edge(
            a,
            b,
            TpiinArc {
                color: ArcColor::Trading,
                weight: 1.0,
            },
        );
        let tpiin = Tpiin::assemble(graph, vec![], vec![a, b], 0, 1, vec![], vec![]);
        assert!(!verify_tpiin(&tpiin, true).all_hold());
        assert!(verify_tpiin(&tpiin, false).all_hold());
    }
}
