//! The continuous telemetry timeline: a fixed-memory, two-tier ring of
//! time-series points sampled from the [`MetricsRegistry`].
//!
//! `/metrics` answers "what is the value now"; the timeline answers
//! "how did it get here".  A background recorder (the daemon's
//! telemetry thread) calls [`Timeline::sample`] once per tick and the
//! timeline appends one point per registered metric:
//!
//! * counters and gauges become scalar points `(tick, value)`;
//! * histograms are captured as their **cumulative** bucket counts, so
//!   any two samples can be differenced into an exact per-interval
//!   distribution — windowed percentiles fall out of bucket deltas
//!   without a second clock or a second ring inside the histogram.
//!
//! Retention is tiered, Prometheus-style: every tick lands in the
//! *fine* ring (default 600 points — 10 minutes at a 1 s tick) and
//! every [`TimelineConfig::coarse_every`]-th tick is also written to
//! the *coarse* ring (default every 15 ticks, 480 points — 2 hours at
//! a 1 s tick).  Both rings are preallocated per series, so memory is
//! bounded by `registered series x (fine + coarse capacity)` and old
//! points are overwritten, never reallocated.
//!
//! Queries ([`Timeline::query`]) address scalar series by metric name
//! and histogram series through derived names: `{name}.p99_ns` /
//! `{name}.p50_ns` (per-interval estimated quantiles), `{name}.rate`
//! (events per tick) and `{name}.count` (cumulative).  The SLO engine
//! ([`crate::slo`]) consumes the same rings through
//! [`Timeline::hist_window_delta`] and [`Timeline::window_delta`].

use crate::json::Json;
use crate::metrics::{MetricsRegistry, BUCKET_BOUNDS_NS};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Histogram buckets per point: the bounded buckets plus overflow.
const NUM_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// Sizing of the two retention tiers.
#[derive(Clone, Debug)]
pub struct TimelineConfig {
    /// Points kept per series at full tick resolution (default 600 —
    /// ten minutes at a one-second tick).
    pub fine_capacity: usize,
    /// Every n-th tick is downsampled into the coarse tier (default 15).
    pub coarse_every: u64,
    /// Downsampled points kept per series (default 480 — two hours at a
    /// one-second tick with `coarse_every = 15`).
    pub coarse_capacity: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            fine_capacity: 600,
            coarse_every: 15,
            coarse_capacity: 480,
        }
    }
}

/// One queryable scalar observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelinePoint {
    /// Recorder tick the point was sampled at.
    pub tick: u64,
    /// Sampled (or derived) value.
    pub value: f64,
}

/// A cumulative histogram capture at one tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistPoint {
    /// Recorder tick the capture was taken at.
    pub tick: u64,
    /// Cumulative observation count.
    pub count: u64,
    /// Cumulative sum of observations, nanoseconds.
    pub sum_ns: u64,
    /// Cumulative per-bucket counts ([`BUCKET_BOUNDS_NS`] + overflow).
    pub buckets: [u64; NUM_BUCKETS],
}

/// The exact distribution between two histogram captures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistDelta {
    /// Observations recorded in the interval.
    pub count: u64,
    /// Sum of observations in the interval, nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts in the interval.
    pub buckets: [u64; NUM_BUCKETS],
    /// Ticks the interval spans.
    pub span_ticks: u64,
}

/// A preallocated overwrite-oldest ring.
#[derive(Debug)]
struct Ring<T> {
    data: Vec<T>,
    /// Index of the next write (== oldest element once full).
    head: usize,
    len: usize,
}

impl<T: Clone> Ring<T> {
    fn new(capacity: usize) -> Ring<T> {
        Ring {
            data: Vec::with_capacity(capacity.max(1)),
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, value: T) {
        let cap = self.data.capacity();
        if self.data.len() < cap {
            self.data.push(value);
            self.len += 1;
        } else {
            self.data[self.head] = value;
        }
        self.head = (self.head + 1) % cap;
    }

    /// Oldest-to-newest iteration.
    fn iter(&self) -> impl Iterator<Item = &T> {
        let (newer, older) = if self.len < self.data.capacity() {
            (&self.data[..self.len], &self.data[..0])
        } else {
            self.data.split_at(self.head)
        };
        older.iter().chain(newer.iter())
    }
}

#[derive(Debug)]
struct ScalarSeries {
    fine: Ring<TimelinePoint>,
    coarse: Ring<TimelinePoint>,
}

#[derive(Debug)]
struct HistSeries {
    fine: Ring<HistPoint>,
    coarse: Ring<HistPoint>,
}

#[derive(Default)]
struct TimelineInner {
    scalars: BTreeMap<String, ScalarSeries>,
    hists: BTreeMap<String, HistSeries>,
    last_tick: Option<u64>,
}

/// The two-tier time-series store (see the module docs).
pub struct Timeline {
    config: TimelineConfig,
    inner: Mutex<TimelineInner>,
}

impl Timeline {
    /// An empty timeline; series appear as metrics are first sampled.
    pub fn new(config: TimelineConfig) -> Timeline {
        Timeline {
            config,
            inner: Mutex::new(TimelineInner::default()),
        }
    }

    /// The configured tier sizing.
    pub fn config(&self) -> &TimelineConfig {
        &self.config
    }

    /// Samples every registered counter, gauge and histogram at `tick`.
    /// Ticks must be monotone; a stale or duplicate tick is ignored so
    /// a recorder racing a clock adjustment cannot corrupt the rings.
    pub fn sample(&self, tick: u64, registry: &MetricsRegistry) {
        let mut inner = self.inner.lock();
        if inner.last_tick.is_some_and(|last| tick <= last) {
            return;
        }
        inner.last_tick = Some(tick);
        let coarse = self.config.coarse_every.max(1);
        let coarse_tick = tick.is_multiple_of(coarse);

        for (name, value) in registry.counters_snapshot() {
            self.push_scalar(&mut inner, &name, tick, value as f64, coarse_tick);
        }
        for (name, value) in registry.gauges_snapshot() {
            self.push_scalar(&mut inner, &name, tick, value, coarse_tick);
        }
        for (name, histogram) in registry.histograms_snapshot() {
            let counts = histogram.bucket_counts();
            let mut buckets = [0u64; NUM_BUCKETS];
            buckets.copy_from_slice(&counts[..NUM_BUCKETS]);
            let point = HistPoint {
                tick,
                count: histogram.count(),
                sum_ns: histogram.sum_ns(),
                buckets,
            };
            let series = inner.hists.entry(name).or_insert_with(|| HistSeries {
                fine: Ring::new(self.config.fine_capacity),
                coarse: Ring::new(self.config.coarse_capacity),
            });
            series.fine.push(point.clone());
            if coarse_tick {
                series.coarse.push(point);
            }
        }
    }

    fn push_scalar(
        &self,
        inner: &mut TimelineInner,
        name: &str,
        tick: u64,
        value: f64,
        coarse_tick: bool,
    ) {
        let series = inner
            .scalars
            .entry(name.to_string())
            .or_insert_with(|| ScalarSeries {
                fine: Ring::new(self.config.fine_capacity),
                coarse: Ring::new(self.config.coarse_capacity),
            });
        let point = TimelinePoint { tick, value };
        series.fine.push(point);
        if coarse_tick {
            series.coarse.push(point);
        }
    }

    /// The last tick [`Timeline::sample`] recorded, if any.
    pub fn last_tick(&self) -> Option<u64> {
        self.inner.lock().last_tick
    }

    /// Every queryable metric name: scalar series verbatim, histogram
    /// series through their derived `.p50_ns` / `.p99_ns` / `.rate` /
    /// `.count` views.
    pub fn metric_names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner.scalars.keys().cloned().collect();
        for name in inner.hists.keys() {
            for suffix in [".p50_ns", ".p99_ns", ".rate", ".count"] {
                names.push(format!("{name}{suffix}"));
            }
        }
        names.sort();
        names
    }

    /// Whether `metric` resolves to a series (scalar or derived).
    pub fn has_metric(&self, metric: &str) -> bool {
        let inner = self.inner.lock();
        if inner.scalars.contains_key(metric) {
            return true;
        }
        split_derived(metric).is_some_and(|(base, _)| inner.hists.contains_key(base))
    }

    /// Points for `metric` with `tick >= since`, oldest first.  Coarse
    /// history is used for the stretch the fine ring no longer covers,
    /// so a query spanning both tiers comes back seamless (coarse
    /// spacing on the old end, per-tick on the recent end).  Unknown
    /// metrics return an empty vector — use [`Timeline::has_metric`]
    /// to distinguish "no such series" from "no recent points".
    pub fn query(&self, metric: &str, since: u64) -> Vec<TimelinePoint> {
        let inner = self.inner.lock();
        if let Some(series) = inner.scalars.get(metric) {
            return merge_tiers(&series.coarse, &series.fine, since);
        }
        let Some((base, view)) = split_derived(metric) else {
            return Vec::new();
        };
        let Some(series) = inner.hists.get(base) else {
            return Vec::new();
        };
        let merged = merge_hist_tiers(&series.coarse, &series.fine, since);
        derive_hist_view(&merged, view)
    }

    /// The exact distribution recorded for histogram `metric` between
    /// the newest capture and the newest capture at least `window`
    /// ticks older (clamped to the oldest retained capture).  `None`
    /// when the series is unknown or has fewer than two captures.
    pub fn hist_window_delta(&self, metric: &str, window: u64, now: u64) -> Option<HistDelta> {
        let inner = self.inner.lock();
        let series = inner.hists.get(metric)?;
        let merged = merge_hist_tiers(&series.coarse, &series.fine, 0);
        let newest = merged.iter().rev().find(|p| p.tick <= now)?;
        let cutoff = now.saturating_sub(window);
        // The newest capture at or before the window start; if the
        // series is younger than the window, fall back to its oldest
        // capture so early daemon life still yields a (partial) view.
        let base = merged
            .iter()
            .rev()
            .find(|p| p.tick <= cutoff)
            .or_else(|| merged.first().filter(|p| p.tick < newest.tick))?;
        let mut buckets = [0u64; NUM_BUCKETS];
        for (delta, (new, old)) in buckets
            .iter_mut()
            .zip(newest.buckets.iter().zip(base.buckets.iter()))
        {
            *delta = new.saturating_sub(*old);
        }
        Some(HistDelta {
            count: newest.count.saturating_sub(base.count),
            sum_ns: newest.sum_ns.saturating_sub(base.sum_ns),
            buckets,
            span_ticks: newest.tick - base.tick,
        })
    }

    /// `(value_delta, span_ticks)` for scalar `metric` between the
    /// newest point and the newest point at least `window` ticks older
    /// (clamped to the oldest retained point, so a young series yields
    /// a partial window instead of nothing).
    pub fn window_delta(&self, metric: &str, window: u64, now: u64) -> Option<(f64, u64)> {
        let inner = self.inner.lock();
        let series = inner.scalars.get(metric)?;
        let merged = merge_tiers(&series.coarse, &series.fine, 0);
        let newest = merged.iter().rev().find(|p| p.tick <= now)?;
        let cutoff = now.saturating_sub(window);
        let base = merged
            .iter()
            .rev()
            .find(|p| p.tick <= cutoff)
            .or_else(|| merged.first().filter(|p| p.tick < newest.tick))?;
        Some((newest.value - base.value, newest.tick - base.tick))
    }

    /// Sums [`Timeline::window_delta`] over every scalar series named
    /// by `metrics`; an entry ending in `.` matches as a prefix.  The
    /// SLO ratio rules use this for denominators like "all responses".
    pub fn window_delta_sum(&self, metrics: &[String], window: u64, now: u64) -> f64 {
        let names: Vec<String> = {
            let inner = self.inner.lock();
            metrics
                .iter()
                .flat_map(|m| -> Vec<String> {
                    if m.ends_with('.') {
                        inner
                            .scalars
                            .keys()
                            .filter(|name| name.starts_with(m.as_str()))
                            .cloned()
                            .collect()
                    } else {
                        vec![m.clone()]
                    }
                })
                .collect()
        };
        names
            .iter()
            .filter_map(|name| self.window_delta(name, window, now))
            .map(|(delta, _)| delta)
            .sum()
    }

    /// The full store as JSONL: one compact JSON object per line, every
    /// series, both tiers, oldest first.  Scalar lines carry
    /// `metric/tier/tick/value`; histogram lines add
    /// `count/sum_ns/buckets`.  This is the offline-analysis export
    /// behind `GET /timeline/export`.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, series) in &inner.scalars {
            for (tier, ring) in [("coarse", &series.coarse), ("fine", &series.fine)] {
                for point in ring.iter() {
                    let line = Json::Object(vec![
                        ("metric".to_string(), Json::Str(name.clone())),
                        ("tier".to_string(), Json::Str(tier.to_string())),
                        ("tick".to_string(), Json::Int(point.tick)),
                        ("value".to_string(), Json::Float(point.value)),
                    ]);
                    out.push_str(&line.to_compact());
                    out.push('\n');
                }
            }
        }
        for (name, series) in &inner.hists {
            for (tier, ring) in [("coarse", &series.coarse), ("fine", &series.fine)] {
                for point in ring.iter() {
                    let line = Json::Object(vec![
                        ("metric".to_string(), Json::Str(name.clone())),
                        ("tier".to_string(), Json::Str(tier.to_string())),
                        ("tick".to_string(), Json::Int(point.tick)),
                        ("count".to_string(), Json::Int(point.count)),
                        ("sum_ns".to_string(), Json::Int(point.sum_ns)),
                        (
                            "buckets".to_string(),
                            Json::Array(point.buckets.iter().map(|&b| Json::Int(b)).collect()),
                        ),
                    ]);
                    out.push_str(&line.to_compact());
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Splits a derived histogram metric name into `(base, view)`.
fn split_derived(metric: &str) -> Option<(&str, &str)> {
    for suffix in [".p50_ns", ".p99_ns", ".rate", ".count"] {
        if let Some(base) = metric.strip_suffix(suffix) {
            return Some((base, &suffix[1..]));
        }
    }
    None
}

fn merge_tiers(
    coarse: &Ring<TimelinePoint>,
    fine: &Ring<TimelinePoint>,
    since: u64,
) -> Vec<TimelinePoint> {
    let fine_start = fine.iter().next().map_or(u64::MAX, |p| p.tick);
    coarse
        .iter()
        .filter(|p| p.tick < fine_start)
        .chain(fine.iter())
        .filter(|p| p.tick >= since)
        .copied()
        .collect()
}

fn merge_hist_tiers(
    coarse: &Ring<HistPoint>,
    fine: &Ring<HistPoint>,
    since: u64,
) -> Vec<HistPoint> {
    let fine_start = fine.iter().next().map_or(u64::MAX, |p| p.tick);
    coarse
        .iter()
        .filter(|p| p.tick < fine_start)
        .chain(fine.iter())
        .filter(|p| p.tick >= since)
        .cloned()
        .collect()
}

/// Differences consecutive cumulative captures into per-interval scalar
/// points: quantiles and rates describe the interval *ending* at each
/// point's tick.  Intervals with no new observations are skipped for
/// quantile views (there is no latency to report) but emit `0` for
/// `rate`, so rate sparklines show quiet stretches instead of gaps.
fn derive_hist_view(points: &[HistPoint], view: &str) -> Vec<TimelinePoint> {
    if view == "count" {
        return points
            .iter()
            .map(|p| TimelinePoint {
                tick: p.tick,
                value: p.count as f64,
            })
            .collect();
    }
    let mut out = Vec::new();
    for pair in points.windows(2) {
        let (old, new) = (&pair[0], &pair[1]);
        let count = new.count.saturating_sub(old.count);
        let span = (new.tick - old.tick).max(1);
        match view {
            "rate" => out.push(TimelinePoint {
                tick: new.tick,
                value: count as f64 / span as f64,
            }),
            "p50_ns" | "p99_ns" if count > 0 => {
                let mut buckets = [0u64; NUM_BUCKETS];
                for (d, (n, o)) in buckets
                    .iter_mut()
                    .zip(new.buckets.iter().zip(old.buckets.iter()))
                {
                    *d = n.saturating_sub(*o);
                }
                let q = if view == "p50_ns" { 0.50 } else { 0.99 };
                if let Some(value) = estimate_quantile_ns(&buckets, q) {
                    out.push(TimelinePoint {
                        tick: new.tick,
                        value,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Estimates the `q`-quantile (nanoseconds) of a bucketed distribution
/// by linear interpolation inside the target bucket.  The overflow
/// bucket reports its lower bound (the largest finite bound): the
/// estimate is then a known *underestimate* rather than an invented
/// magnitude.  `None` when the distribution is empty.
pub fn estimate_quantile_ns(buckets: &[u64], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let before = cum;
        cum += count;
        if cum >= target {
            let last_bound = BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1];
            if i >= BUCKET_BOUNDS_NS.len() {
                return Some(last_bound as f64);
            }
            let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
            let upper = BUCKET_BOUNDS_NS[i];
            let frac = (target - before) as f64 / count as f64;
            return Some(lower as f64 + frac * (upper - lower) as f64);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn small() -> Timeline {
        Timeline::new(TimelineConfig {
            fine_capacity: 4,
            coarse_every: 2,
            coarse_capacity: 4,
        })
    }

    #[test]
    fn scalar_rings_overwrite_oldest() {
        let registry = MetricsRegistry::new();
        let timeline = small();
        let counter = registry.counter("c");
        for tick in 1..=7 {
            counter.add(10);
            timeline.sample(tick, &registry);
        }
        // Fine keeps the last 4 ticks; coarse keeps even ticks.
        let points = timeline.query("c", 0);
        let ticks: Vec<u64> = points.iter().map(|p| p.tick).collect();
        assert_eq!(ticks, vec![2, 4, 5, 6, 7], "coarse fills before fine");
        assert_eq!(points.last().unwrap().value, 70.0);
        let recent = timeline.query("c", 6);
        assert_eq!(recent.len(), 2);
    }

    #[test]
    fn stale_ticks_are_ignored() {
        let registry = MetricsRegistry::new();
        registry.counter("c").inc();
        let timeline = small();
        timeline.sample(5, &registry);
        timeline.sample(5, &registry);
        timeline.sample(3, &registry);
        assert_eq!(timeline.query("c", 0).len(), 1);
        assert_eq!(timeline.last_tick(), Some(5));
    }

    #[test]
    fn histogram_views_derive_from_cumulative_captures() {
        let registry = MetricsRegistry::new();
        let timeline = small();
        let h = registry.histogram("lat");
        timeline.sample(1, &registry);
        for _ in 0..100 {
            h.record(Duration::from_micros(2)); // (1µs, 4µs] bucket
        }
        timeline.sample(2, &registry);
        timeline.sample(3, &registry); // quiet interval
        let p99 = timeline.query("lat.p99_ns", 0);
        assert_eq!(p99.len(), 1, "quiet intervals emit no quantile point");
        assert_eq!(p99[0].tick, 2);
        assert!(
            p99[0].value > 1_000.0 && p99[0].value <= 4_000.0,
            "p99 {} outside the recorded bucket",
            p99[0].value
        );
        let rate = timeline.query("lat.rate", 0);
        assert_eq!(
            rate.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![100.0, 0.0],
            "rate shows the quiet interval as zero"
        );
        let count = timeline.query("lat.count", 0);
        assert_eq!(count.last().unwrap().value, 100.0);
        assert!(timeline.has_metric("lat.p50_ns"));
        assert!(!timeline.has_metric("lat.bogus"));
    }

    #[test]
    fn window_deltas_clamp_to_retained_history() {
        let registry = MetricsRegistry::new();
        let timeline = small();
        let counter = registry.counter("c");
        for tick in 1..=3 {
            counter.add(5);
            timeline.sample(tick, &registry);
        }
        // Full window available.
        assert_eq!(timeline.window_delta("c", 2, 3), Some((10.0, 2)));
        // Window older than the series clamps to the oldest point.
        assert_eq!(timeline.window_delta("c", 100, 3), Some((10.0, 2)));
        assert_eq!(timeline.window_delta("missing", 2, 3), None);
    }

    #[test]
    fn window_delta_sum_expands_prefixes() {
        let registry = MetricsRegistry::new();
        let timeline = small();
        let a = registry.counter("serve.responses.2xx");
        let b = registry.counter("serve.responses.5xx");
        timeline.sample(1, &registry);
        a.add(8);
        b.add(2);
        timeline.sample(2, &registry);
        let total = timeline.window_delta_sum(&["serve.responses.".to_string()], 1, 2);
        assert_eq!(total, 10.0);
        let explicit = timeline.window_delta_sum(&["serve.responses.5xx".to_string()], 1, 2);
        assert_eq!(explicit, 2.0);
    }

    #[test]
    fn hist_window_delta_spans_the_window() {
        let registry = MetricsRegistry::new();
        let timeline = small();
        let h = registry.histogram("lat");
        timeline.sample(1, &registry);
        h.record(Duration::from_millis(2));
        timeline.sample(2, &registry);
        h.record(Duration::from_millis(2));
        h.record(Duration::from_millis(2));
        timeline.sample(3, &registry);
        let delta = timeline.hist_window_delta("lat", 1, 3).expect("delta");
        assert_eq!(delta.count, 2, "only the last interval");
        let delta = timeline.hist_window_delta("lat", 10, 3).expect("delta");
        assert_eq!(delta.count, 3, "clamped to oldest capture");
        assert_eq!(delta.span_ticks, 2);
        assert!(timeline.hist_window_delta("nope", 1, 3).is_none());
    }

    #[test]
    fn quantile_estimates_interpolate_and_bound_overflow() {
        // 90 fast + 10 slow: p50 in the fast bucket, p99 in the slow one.
        let mut buckets = [0u64; NUM_BUCKETS];
        buckets[1] = 90; // (1µs, 4µs]
        buckets[6] = 10; // (1ms, 4ms]
        let p50 = estimate_quantile_ns(&buckets, 0.50).unwrap();
        assert!(p50 > 1_000.0 && p50 <= 4_000.0, "p50 {p50}");
        let p99 = estimate_quantile_ns(&buckets, 0.99).unwrap();
        assert!(p99 > 1_000_000.0 && p99 <= 4_000_000.0, "p99 {p99}");
        // Overflow reports the largest finite bound, never invents more.
        let mut over = [0u64; NUM_BUCKETS];
        over[NUM_BUCKETS - 1] = 5;
        assert_eq!(
            estimate_quantile_ns(&over, 0.99),
            Some(*BUCKET_BOUNDS_NS.last().unwrap() as f64)
        );
        assert_eq!(estimate_quantile_ns(&[0u64; NUM_BUCKETS], 0.99), None);
    }

    #[test]
    fn jsonl_export_is_one_object_per_line() {
        let registry = MetricsRegistry::new();
        let timeline = small();
        registry.counter("c").inc();
        registry.histogram("lat").record(Duration::from_micros(3));
        timeline.sample(1, &registry);
        timeline.sample(2, &registry);
        let jsonl = timeline.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines.iter().any(|l| l.contains("\"metric\":\"c\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"metric\":\"lat\"") && l.contains("\"buckets\":[")));
    }

    #[test]
    fn metric_names_cover_scalars_and_derived_views() {
        let registry = MetricsRegistry::new();
        let timeline = small();
        registry.counter("c").inc();
        registry.gauge("g").set(1.0);
        registry.histogram("lat").record(Duration::from_micros(3));
        timeline.sample(1, &registry);
        let names = timeline.metric_names();
        for expected in [
            "c",
            "g",
            "lat.p50_ns",
            "lat.p99_ns",
            "lat.rate",
            "lat.count",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}
