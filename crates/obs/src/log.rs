//! A leveled stderr logger.
//!
//! The active level comes from the `TPIIN_LOG` environment variable
//! (`error`, `warn`, `info`, `debug`, `trace`, or `off`; read once via
//! [`init_from_env`]) or an explicit [`set_level`] call — the CLI's
//! `--log-level` flag wins over the environment.  Disabled levels cost
//! one relaxed atomic load at the macro call site.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error = 1,
    /// Suspicious but tolerated conditions.
    Warn = 2,
    /// High-level progress (one line per pipeline phase).
    Info = 3,
    /// Per-stage detail (graph sizes, counts).
    Debug = 4,
    /// Per-item detail; very verbose.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as accepted by [`Level::from_str`].
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected error, warn, info, debug, or trace)"
            )),
        }
    }
}

/// 0 = all logging off; otherwise the numeric value of the max [`Level`].
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the maximum level that will be emitted; `None` silences all logging.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current maximum emitted level, if logging is enabled at all.
pub fn max_level() -> Option<Level> {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Whether a record at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Applies `TPIIN_LOG` from the environment, keeping the default
/// (`warn`) when unset and silencing on `off`/`none`.  Unparseable
/// values are reported on stderr and otherwise ignored.
pub fn init_from_env() {
    let Ok(raw) = std::env::var("TPIIN_LOG") else {
        return;
    };
    let raw = raw.trim();
    if raw.is_empty() {
        return;
    }
    match raw.to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => set_level(None),
        other => match other.parse::<Level>() {
            Ok(level) => set_level(Some(level)),
            Err(err) => eprintln!("tpiin: ignoring TPIIN_LOG: {err}"),
        },
    }
}

/// Emits one record to stderr if `level` is enabled.  Prefer the
/// [`error!`](crate::error)/[`warn!`](crate::warn)/… macros, which add
/// the module path and skip argument formatting when disabled.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("[{level:>5}] {target}: {args}");
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::log($crate::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::log($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::log($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::log($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Trace) {
            $crate::log::log($crate::Level::Trace, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("INFO".parse::<Level>(), Ok(Level::Info));
        assert_eq!("warning".parse::<Level>(), Ok(Level::Warn));
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Debug.to_string(), "debug");
    }
}
