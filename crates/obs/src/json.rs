//! A minimal JSON value and writer for profile export.
//!
//! `tpiin-obs` sits below every other crate in the workspace (including
//! `tpiin-io`, which has a full parser), so it carries its own tiny
//! writer instead of depending upward.

use std::fmt::Write as _;

/// A JSON value.  Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all exported metrics are counts or
    /// nanosecond totals).
    Int(u64),
    /// A floating-point number; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Renders with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on one line with no whitespace — the JSONL form used by
    /// the timeline export, where every record must be a single line.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let value = Json::Object(vec![
            ("name".to_string(), Json::Str("fusion".to_string())),
            ("ok".to_string(), Json::Bool(true)),
            (
                "children".to_string(),
                Json::Array(vec![Json::Int(3), Json::Float(0.5), Json::Null]),
            ),
            ("empty".to_string(), Json::Object(vec![])),
        ]);
        let text = value.to_pretty();
        assert!(text.contains("\"name\": \"fusion\""));
        assert!(text.contains("\"children\": ["));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn compact_renders_one_line() {
        let value = Json::Object(vec![
            ("m".to_string(), Json::Str("a".to_string())),
            (
                "v".to_string(),
                Json::Array(vec![Json::Int(1), Json::Int(2)]),
            ),
        ]);
        assert_eq!(value.to_compact(), "{\"m\":\"a\",\"v\":[1,2]}");
    }

    #[test]
    fn escapes_strings_and_nan() {
        let value = Json::Array(vec![
            Json::Str("a\"b\\c\nd".to_string()),
            Json::Float(f64::NAN),
        ]);
        let text = value.to_pretty();
        assert!(text.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(text.contains("null"));
    }
}
