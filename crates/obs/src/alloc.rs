//! The instrumented global allocator: the byte-level half of the
//! resource flight recorder.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and is installed as
//! the `#[global_allocator]` of every binary that links `tpiin-obs`
//! (i.e. the whole workspace).  Each allocation updates two ledgers:
//!
//! * **thread-local counters** (plain `Cell`s, no atomics): cumulative
//!   bytes/calls allocated and freed, the thread's current live-byte
//!   balance and a resettable peak watermark.  [`Span`](crate::Span)
//!   and [`TimedScope`](crate::TimedScope) snapshot these at open and
//!   diff them at close, so every phase in a
//!   [`RunProfile`](crate::RunProfile) carries bytes-allocated,
//!   allocation-count and peak-live attribution next to its wall time.
//! * **process-global atomics**: total allocated bytes/calls, the live
//!   balance and a high-water mark, feeding `/status`, `/metrics`
//!   gauges and the load generator's per-rate-step peak-memory column.
//!
//! The accounting adds a handful of thread-local `Cell` updates and
//! four relaxed atomic RMWs per allocation — cheap enough to leave on
//! unconditionally, which is the point: a flight recorder that must be
//! switched on after the incident recorded nothing.
//!
//! Span attribution is **per-thread**: work a phase fans out to worker
//! threads shows up in the workers' own spans (and in the global
//! totals), not in the coordinator's span.  The serial pipeline — the
//! default CLI configuration — attributes everything exactly.
//!
//! The watermark protocol is stack-shaped, matching span nesting: a
//! child span saves the current peak, resets it to the live balance,
//! and on close folds its own peak back into the parent's saved value.
//! A parent therefore always reports a peak at least as high as any
//! child's.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Cumulative allocated bytes across the process.
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocation calls across the process.
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Live heap balance (allocated minus freed); signed because frees can
/// race ahead of the balance on other threads.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`] since process start or the last
/// [`reset_peak`].
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

struct ThreadLedger {
    allocated_bytes: Cell<u64>,
    allocs: Cell<u64>,
    freed_bytes: Cell<u64>,
    /// This thread's allocated-minus-freed balance; goes negative on
    /// threads that free buffers allocated elsewhere.
    live: Cell<i64>,
    /// Resettable watermark of `live` (the span attribution protocol).
    peak: Cell<i64>,
}

thread_local! {
    static LEDGER: ThreadLedger = const {
        ThreadLedger {
            allocated_bytes: Cell::new(0),
            allocs: Cell::new(0),
            freed_bytes: Cell::new(0),
            live: Cell::new(0),
            peak: Cell::new(0),
        }
    };
}

#[inline]
fn note_alloc(bytes: usize) {
    let bytes64 = bytes as u64;
    TOTAL_BYTES.fetch_add(bytes64, Ordering::Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    // `try_with` so a straggler allocation during thread-local teardown
    // still lands in the global ledger instead of aborting.
    let _ = LEDGER.try_with(|ledger| {
        ledger
            .allocated_bytes
            .set(ledger.allocated_bytes.get() + bytes64);
        ledger.allocs.set(ledger.allocs.get() + 1);
        let live = ledger.live.get() + bytes as i64;
        ledger.live.set(live);
        if live > ledger.peak.get() {
            ledger.peak.set(live);
        }
    });
}

#[inline]
fn note_dealloc(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
    let _ = LEDGER.try_with(|ledger| {
        ledger
            .freed_bytes
            .set(ledger.freed_bytes.get() + bytes as u64);
        ledger.live.set(ledger.live.get() - bytes as i64);
    });
}

/// A `#[global_allocator]` wrapper over the system allocator that keeps
/// the flight-recorder ledgers (see the module docs).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the accounting touches only
// `Cell`s and atomics and never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Accounted as free-old + alloc-new so the live balance
            // stays exact; counts as one allocation call.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

#[global_allocator]
static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Process-wide allocator totals at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Cumulative bytes handed out since process start.
    pub total_bytes: u64,
    /// Cumulative allocation calls since process start.
    pub total_allocs: u64,
    /// Bytes currently live (allocated minus freed), clamped at zero.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since start or [`reset_peak`].
    pub peak_bytes: u64,
}

/// Snapshots the process-wide allocator ledger.
pub fn stats() -> AllocStats {
    AllocStats {
        total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        total_allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Resets the process-wide peak watermark to the current live balance.
/// The load generator calls this between rate steps so each step
/// reports its own peak, not the sweep's.
pub fn reset_peak() {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
}

/// An open span's starting position in the thread ledger, plus the
/// parent's saved peak watermark.  Obtain with [`checkpoint`], close
/// with [`consume`].
#[derive(Clone, Copy, Debug)]
pub struct AllocCheckpoint {
    allocated_bytes: u64,
    allocs: u64,
    saved_peak: i64,
}

/// Resource usage attributed to one closed span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanResources {
    /// Bytes allocated on this thread while the span was open
    /// (children included — the counters are cumulative).
    pub alloc_bytes: u64,
    /// Allocation calls on this thread while the span was open.
    pub allocs: u64,
    /// Highest live-byte balance this thread saw while the span was
    /// open, relative to the process-lifetime thread balance.
    pub peak_live_bytes: u64,
}

/// Opens a resource-attribution window on the current thread: records
/// the cumulative counters and resets the peak watermark to the current
/// live balance (saving the parent's watermark inside the checkpoint).
pub fn checkpoint() -> AllocCheckpoint {
    LEDGER
        .try_with(|ledger| {
            let saved_peak = ledger.peak.get();
            ledger.peak.set(ledger.live.get());
            AllocCheckpoint {
                allocated_bytes: ledger.allocated_bytes.get(),
                allocs: ledger.allocs.get(),
                saved_peak,
            }
        })
        .unwrap_or(AllocCheckpoint {
            allocated_bytes: 0,
            allocs: 0,
            saved_peak: 0,
        })
}

/// Closes the window opened by [`checkpoint`]: returns the deltas and
/// folds this span's peak back into the parent's saved watermark.
/// Must be called on the thread that produced the checkpoint, in LIFO
/// order with respect to other open checkpoints (span nesting
/// guarantees both).
pub fn consume(start: AllocCheckpoint) -> SpanResources {
    LEDGER
        .try_with(|ledger| {
            let span_peak = ledger.peak.get();
            ledger.peak.set(start.saved_peak.max(span_peak));
            SpanResources {
                alloc_bytes: ledger.allocated_bytes.get() - start.allocated_bytes,
                allocs: ledger.allocs.get() - start.allocs,
                peak_live_bytes: span_peak.max(0) as u64,
            }
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sees_boxed_allocations() {
        let before = stats();
        let held: Vec<Box<[u8; 1024]>> = (0..16).map(|_| Box::new([0u8; 1024])).collect();
        let after = stats();
        assert!(after.total_allocs >= before.total_allocs + 16);
        assert!(after.total_bytes >= before.total_bytes + 16 * 1024);
        drop(held);
    }

    #[test]
    fn checkpoint_attributes_this_threads_allocations() {
        let start = checkpoint();
        let held: Vec<Box<[u8; 512]>> = (0..8).map(|_| Box::new([7u8; 512])).collect();
        let used = consume(start);
        assert!(used.allocs >= 8, "allocs = {}", used.allocs);
        assert!(used.alloc_bytes >= 8 * 512, "bytes = {}", used.alloc_bytes);
        drop(held);
    }

    #[test]
    fn nested_checkpoints_fold_peaks_into_parent() {
        let parent = checkpoint();
        let child = checkpoint();
        let buffer = vec![0u8; 64 * 1024];
        drop(buffer);
        let child_used = consume(child);
        // Allocate a little more on the parent after the child closed.
        let small = vec![0u8; 128];
        let parent_used = consume(parent);
        drop(small);
        assert!(parent_used.alloc_bytes >= child_used.alloc_bytes);
        assert!(parent_used.allocs >= child_used.allocs);
        assert!(parent_used.peak_live_bytes >= child_used.peak_live_bytes);
    }

    #[test]
    fn reset_peak_drops_watermark_to_live() {
        let spike = vec![0u8; 256 * 1024];
        drop(spike);
        reset_peak();
        let after = stats();
        // The watermark can only exceed live by whatever other test
        // threads allocate between the two loads; it must no longer
        // carry the spike.
        assert!(after.peak_bytes <= after.live_bytes + 256 * 1024);
    }
}
