//! RAII span timers.
//!
//! A [`Span`] measures the wall-clock time between construction and drop
//! and folds it into the global phase tree
//! ([`MetricsRegistry::record_phase`]).  Two constructors cover the two
//! threading situations in the pipeline:
//!
//! * [`Span::enter`] nests under whatever span is already open on the
//!   *current thread* (a thread-local path stack), so sequential code
//!   gets a parent/child tree for free.
//! * [`Span::at`] records under an explicit absolute path, which keeps
//!   phase names consistent when the same logical phase runs on many
//!   worker threads at once.
//!
//! When profiling is disabled ([`crate::set_profiling`]) both
//! constructors cost a single relaxed atomic load and record nothing.

use crate::metrics::{global, MetricsRegistry};
use crate::profiling_enabled;
use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    static CURRENT_PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// An RAII timer that records into the global phase tree on drop.
#[must_use = "a span records its phase when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    /// `None` when profiling is off — drop is then a no-op.
    active: Option<SpanInner>,
}

struct SpanInner {
    path: String,
    /// Byte length of the thread-local path before this span opened;
    /// restored on drop.  `None` for absolute ([`Span::at`]) spans,
    /// which leave the thread-local stack untouched.
    saved_len: Option<usize>,
    started: Instant,
}

impl Span {
    /// Opens a span named `name` nested under the current thread's
    /// innermost open span (if any).
    pub fn enter(name: &str) -> Span {
        if !profiling_enabled() {
            return Span { active: None };
        }
        let (path, saved_len) = CURRENT_PATH.with(|current| {
            let mut current = current.borrow_mut();
            let saved_len = current.len();
            if !current.is_empty() {
                current.push('/');
            }
            current.push_str(name);
            (current.clone(), saved_len)
        });
        Span {
            active: Some(SpanInner {
                path,
                saved_len: Some(saved_len),
                started: Instant::now(),
            }),
        }
    }

    /// Opens a span at the absolute `path`, independent of any
    /// thread-local nesting.  Use from worker threads so the phase name
    /// matches the coordinator's tree.
    pub fn at(path: &str) -> Span {
        if !profiling_enabled() {
            return Span { active: None };
        }
        Span {
            active: Some(SpanInner {
                path: path.to_string(),
                saved_len: None,
                started: Instant::now(),
            }),
        }
    }

    /// The full `/`-separated path this span records under, or `None`
    /// when profiling was off at construction.
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|inner| inner.path.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.active.take() else {
            return;
        };
        let elapsed = inner.started.elapsed();
        if let Some(saved_len) = inner.saved_len {
            CURRENT_PATH.with(|current| current.borrow_mut().truncate(saved_len));
        }
        global().record_phase(&inner.path, elapsed);
    }
}

/// A scope timer that *always* measures and hands the duration back,
/// recording into a registry only when profiling is on.
///
/// Fusion uses this for `FusionReport::stage_timings`, which must be
/// populated on every run regardless of `--profile`.
pub struct TimedScope {
    started: Instant,
}

impl TimedScope {
    /// Starts measuring.
    pub fn start() -> TimedScope {
        TimedScope {
            started: Instant::now(),
        }
    }

    /// Stops measuring, records under `path` in the global registry when
    /// profiling is enabled, and returns the elapsed duration either way.
    pub fn finish(self, path: &str) -> Duration {
        self.finish_into(global(), path)
    }

    /// As [`TimedScope::finish`], against an explicit registry (tests).
    pub fn finish_into(self, registry: &MetricsRegistry, path: &str) -> Duration {
        let elapsed = self.started.elapsed();
        if profiling_enabled() {
            registry.record_phase(path, elapsed);
        }
        elapsed
    }
}
