//! RAII span timers.
//!
//! A [`Span`] measures the wall-clock time between construction and drop
//! and folds it into the global phase tree
//! ([`MetricsRegistry::record_phase`]); when a trace context is
//! installed ([`mod@crate::trace`]) the same span is also appended to the
//! trace's event buffer, so one instrumentation point feeds both the
//! aggregate profile and the per-run/per-request timeline.  Three
//! constructors cover the threading situations in the pipeline:
//!
//! * [`Span::enter`] nests under whatever span is already open on the
//!   *current thread* (a thread-local path stack), so sequential code
//!   gets a parent/child tree for free.
//! * [`Span::at`] records under an explicit absolute path, which keeps
//!   phase names consistent when the same logical phase runs on many
//!   worker threads at once.
//! * [`Span::enter_under`] nests under an explicit parent
//!   [`SpanHandle`] carried across a thread boundary — the worker-pool
//!   case, where thread-local nesting would misplace the span at the
//!   tree root.  The parent link is recorded in the registry so
//!   [`crate::RunProfile`] can reconstruct the tree even for spans
//!   recorded under bare relative paths.
//!
//! When both profiling ([`crate::set_profiling`]) and tracing are
//! disabled, every constructor costs one relaxed atomic load each and
//! records nothing.

use crate::alloc::{checkpoint, consume, AllocCheckpoint};
use crate::metrics::{global, MetricsRegistry};
use crate::profiling_enabled;
use crate::trace::{current_trace, tracing_enabled};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

thread_local! {
    static CURRENT_PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Process-wide span id allocator (ids are unique within a run).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// A cloneable, `Send` reference to an open span: its full path and
/// unique id.  Hand one to worker threads so their spans nest under
/// the right parent via [`Span::enter_under`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanHandle {
    /// Full `/`-separated path of the span this handle refers to.
    pub path: String,
    /// Unique span id (process-wide, this run).
    pub id: u64,
}

/// An RAII timer that records into the global phase tree on drop.
#[must_use = "a span records its phase when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    /// `None` when both profiling and tracing are off — drop is then a
    /// no-op.
    active: Option<SpanInner>,
}

struct SpanInner {
    path: String,
    id: u64,
    /// Byte length of the thread-local path before this span opened;
    /// restored on drop.  `None` for absolute ([`Span::at`]) spans,
    /// which leave the thread-local stack untouched.
    saved_len: Option<usize>,
    started: Instant,
    /// The allocator-ledger position at open; diffed on drop so the
    /// phase aggregate carries bytes/allocs/peak next to wall time.
    alloc_start: AllocCheckpoint,
}

fn recording() -> bool {
    profiling_enabled() || tracing_enabled()
}

impl Span {
    /// Opens a span named `name` nested under the current thread's
    /// innermost open span (if any).
    pub fn enter(name: &str) -> Span {
        if !recording() {
            return Span { active: None };
        }
        let (path, saved_len) = CURRENT_PATH.with(|current| {
            let mut current = current.borrow_mut();
            let saved_len = current.len();
            if !current.is_empty() {
                current.push('/');
            }
            current.push_str(name);
            (current.clone(), saved_len)
        });
        Span {
            active: Some(SpanInner {
                path,
                id: next_span_id(),
                saved_len: Some(saved_len),
                started: Instant::now(),
                alloc_start: checkpoint(),
            }),
        }
    }

    /// Opens a span at the absolute `path`, independent of any
    /// thread-local nesting.  Use from worker threads so the phase name
    /// matches the coordinator's tree.
    pub fn at(path: &str) -> Span {
        if !recording() {
            return Span { active: None };
        }
        Span {
            active: Some(SpanInner {
                path: path.to_string(),
                id: next_span_id(),
                saved_len: None,
                started: Instant::now(),
                alloc_start: checkpoint(),
            }),
        }
    }

    /// Opens a span named `name` nested under the span `parent` refers
    /// to, regardless of which thread either runs on.  The span records
    /// under `{parent.path}/{name}` and the parent link is stored in
    /// the registry ([`MetricsRegistry::record_phase_link`]) so profile
    /// reconstruction keeps the nesting even when sibling spans on the
    /// same worker thread recorded bare relative paths.
    ///
    /// The parent path is also installed as the thread-local root while
    /// the span is open, so deeper [`Span::enter`] calls on the worker
    /// nest correctly.
    pub fn enter_under(parent: &SpanHandle, name: &str) -> Span {
        if !recording() {
            return Span { active: None };
        }
        let (path, saved_len) = CURRENT_PATH.with(|current| {
            let mut current = current.borrow_mut();
            let saved_len = current.len();
            if current.is_empty() {
                current.push_str(&parent.path);
            }
            if !current.is_empty() {
                current.push('/');
            }
            current.push_str(name);
            (current.clone(), saved_len)
        });
        global().record_phase_link(&path, &parent.path);
        Span {
            active: Some(SpanInner {
                path,
                id: next_span_id(),
                saved_len: Some(saved_len),
                started: Instant::now(),
                alloc_start: checkpoint(),
            }),
        }
    }

    /// The full `/`-separated path this span records under, or `None`
    /// when neither profiling nor tracing was on at construction.
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|inner| inner.path.as_str())
    }

    /// A sendable handle to this span for [`Span::enter_under`], or
    /// `None` when the span is inactive.
    pub fn handle(&self) -> Option<SpanHandle> {
        self.active.as_ref().map(|inner| SpanHandle {
            path: inner.path.clone(),
            id: inner.id,
        })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.active.take() else {
            return;
        };
        let elapsed = inner.started.elapsed();
        // Always consume the checkpoint (it restores the thread's peak
        // watermark), even if profiling was switched off mid-span.
        let resources = consume(inner.alloc_start);
        if let Some(saved_len) = inner.saved_len {
            CURRENT_PATH.with(|current| current.borrow_mut().truncate(saved_len));
        }
        if profiling_enabled() {
            global().record_phase_resources(&inner.path, elapsed, resources);
        }
        if let Some(trace) = current_trace() {
            trace.record_span(&inner.path, inner.started, elapsed);
        }
    }
}

/// A scope timer that *always* measures and hands the duration back,
/// recording into a registry only when profiling is on (and into the
/// current trace context only when tracing is on).
///
/// Fusion uses this for `FusionReport::stage_timings`, which must be
/// populated on every run regardless of `--profile`.
pub struct TimedScope {
    started: Instant,
    alloc_start: AllocCheckpoint,
}

impl TimedScope {
    /// Starts measuring.
    pub fn start() -> TimedScope {
        TimedScope {
            started: Instant::now(),
            alloc_start: checkpoint(),
        }
    }

    /// Stops measuring, records under `path` in the global registry when
    /// profiling is enabled, and returns the elapsed duration either way.
    pub fn finish(self, path: &str) -> Duration {
        self.finish_into(global(), path)
    }

    /// As [`TimedScope::finish`], against an explicit registry (tests).
    pub fn finish_into(self, registry: &MetricsRegistry, path: &str) -> Duration {
        let elapsed = self.started.elapsed();
        // Consumed unconditionally to keep the thread's peak-watermark
        // stack balanced (scopes nest like spans do).
        let resources = consume(self.alloc_start);
        if profiling_enabled() {
            registry.record_phase_resources(path, elapsed, resources);
        }
        if let Some(trace) = current_trace() {
            trace.record_span(path, self.started, elapsed);
        }
        elapsed
    }
}
