//! The SLO health engine: declarative objectives evaluated against the
//! [`Timeline`] with multi-window burn
//! rates, feeding an ok→warn→page alert state machine with hysteresis.
//!
//! # Burn-rate math
//!
//! Every [`SloSpec`] reduces, per evaluation window, to a single
//! dimensionless **burn rate**: "how many times over its objective is
//! this signal right now".
//!
//! * [`SloKind::LatencyP99`] — the windowed p99 (estimated from
//!   histogram bucket deltas, see
//!   [`estimate_quantile_ns`])
//!   divided by the latency objective.  p99 at exactly the objective
//!   burns at 1.0; twice the objective burns at 2.0.
//! * [`SloKind::RateRatio`] — the observed bad-event fraction
//!   (Δbad / Δtotal over the window) divided by the error budget.
//!   A 1% budget with 2% observed errors burns at 2.0.
//! * [`SloKind::EventRate`] — the observed events-per-tick rate
//!   divided by the budgeted rate (the delta engine's `full_rebuilds`
//!   objective: rebuilds are budgeted, a rebuild storm burns).
//!
//! A window with no data burns at 0 — an idle daemon is healthy, and a
//! latency SLO cannot page on the absence of traffic.
//!
//! # Multi-window rule and hysteresis
//!
//! Each spec is evaluated over a **short** and a **long** window (SRE
//! burn-rate alerting): severity escalates only when *both* windows
//! burn past a threshold, so a one-tick blip cannot page (the long
//! window dilutes it) and a long-ago incident cannot page either (the
//! short window has recovered).  Escalation is immediate; de-escalation
//! requires [`SloSpec::clear_ticks`] consecutive evaluations at the
//! lower severity before the state steps down — the hysteresis that
//! stops a flapping signal from re-paging every other tick.  Every
//! transition is logged through the crate logger.

use crate::timeline::{estimate_quantile_ns, Timeline};
use parking_lot::Mutex;

/// What a spec measures and the objective it is held to.
#[derive(Clone, Debug)]
pub enum SloKind {
    /// Windowed p99 of a histogram against a latency objective (ns).
    LatencyP99 {
        /// Histogram metric name (e.g. `serve.latency.groups`).
        metric: String,
        /// The p99 objective in nanoseconds.
        threshold_ns: f64,
    },
    /// Bad-event fraction of counters against an error budget.
    RateRatio {
        /// Numerator counters; a trailing `.` matches as a prefix.
        bad: Vec<String>,
        /// Denominator counters; a trailing `.` matches as a prefix.
        total: Vec<String>,
        /// Budgeted bad fraction, e.g. `0.01` for a 1% error budget.
        budget: f64,
    },
    /// Events-per-tick of one counter/gauge against a budgeted rate.
    EventRate {
        /// Counter or gauge metric name (e.g. `delta.full_rebuilds`).
        metric: String,
        /// Budgeted events per tick; the rate burns relative to this.
        per_tick_budget: f64,
    },
}

/// One declarative objective plus its window and hysteresis policy.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable alert name (`serve.groups.p99`, `serve.error_rate`, …).
    pub name: String,
    /// The measured signal and objective.
    pub kind: SloKind,
    /// Short burn window, in recorder ticks.
    pub short_ticks: u64,
    /// Long burn window, in recorder ticks.
    pub long_ticks: u64,
    /// Both windows at or above this burn → at least `warn`.
    pub warn_burn: f64,
    /// Both windows at or above this burn → `page`.
    pub page_burn: f64,
    /// Consecutive calmer evaluations required before de-escalating.
    pub clear_ticks: u32,
}

impl SloSpec {
    /// A latency-p99 objective with the default windows and policy.
    pub fn latency_p99(name: &str, metric: &str, threshold_ns: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::LatencyP99 {
                metric: metric.to_string(),
                threshold_ns,
            },
            ..SloSpec::policy_defaults(name)
        }
    }

    /// A bad-fraction objective with the default windows and policy.
    pub fn rate_ratio(name: &str, bad: &[&str], total: &[&str], budget: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::RateRatio {
                bad: bad.iter().map(|s| s.to_string()).collect(),
                total: total.iter().map(|s| s.to_string()).collect(),
                budget,
            },
            ..SloSpec::policy_defaults(name)
        }
    }

    /// An events-per-tick objective with the default windows and policy.
    pub fn event_rate(name: &str, metric: &str, per_tick_budget: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::EventRate {
                metric: metric.to_string(),
                per_tick_budget,
            },
            ..SloSpec::policy_defaults(name)
        }
    }

    fn policy_defaults(name: &str) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::EventRate {
                metric: String::new(),
                per_tick_budget: 1.0,
            },
            short_ticks: 60,
            long_ticks: 300,
            warn_burn: 1.0,
            page_burn: 3.0,
            clear_ticks: 5,
        }
    }

    /// One-line human description of the objective, for `/alerts`.
    pub fn objective(&self) -> String {
        match &self.kind {
            SloKind::LatencyP99 {
                metric,
                threshold_ns,
            } => format!("p99({metric}) <= {:.1}ms", threshold_ns / 1e6),
            SloKind::RateRatio { bad, total, budget } => format!(
                "sum({})/sum({}) <= {:.2}%",
                bad.join("+"),
                total.join("+"),
                budget * 100.0
            ),
            SloKind::EventRate {
                metric,
                per_tick_budget,
            } => format!("rate({metric}) <= {per_tick_budget:.3}/tick"),
        }
    }

    /// The burn rate over the trailing `window` ticks at `now`; 0 when
    /// the window holds no data (see the module docs).
    fn burn(&self, timeline: &Timeline, window: u64, now: u64) -> f64 {
        match &self.kind {
            SloKind::LatencyP99 {
                metric,
                threshold_ns,
            } => {
                let Some(delta) = timeline.hist_window_delta(metric, window, now) else {
                    return 0.0;
                };
                match estimate_quantile_ns(&delta.buckets, 0.99) {
                    Some(p99) if *threshold_ns > 0.0 => p99 / threshold_ns,
                    _ => 0.0,
                }
            }
            SloKind::RateRatio { bad, total, budget } => {
                let bad_delta = timeline.window_delta_sum(bad, window, now).max(0.0);
                let total_delta = timeline.window_delta_sum(total, window, now);
                if total_delta <= 0.0 || *budget <= 0.0 {
                    return 0.0;
                }
                (bad_delta / total_delta) / budget
            }
            SloKind::EventRate {
                metric,
                per_tick_budget,
            } => {
                let Some((delta, span)) = timeline.window_delta(metric, window, now) else {
                    return 0.0;
                };
                if span == 0 || *per_tick_budget <= 0.0 {
                    return 0.0;
                }
                (delta.max(0.0) / span as f64) / per_tick_budget
            }
        }
    }
}

/// Alert severity, ordered so `max` escalates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Burning within budget on at least one window.
    Ok,
    /// Both windows past `warn_burn`.
    Warn,
    /// Both windows past `page_burn`.
    Page,
}

impl AlertState {
    /// Lower-case name, as served in `/alerts` and `/status`.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warn => "warn",
            AlertState::Page => "page",
        }
    }
}

/// One spec's current standing, as of the last evaluation.
#[derive(Clone, Debug)]
pub struct AlertStatus {
    /// The spec's [`SloSpec::name`].
    pub name: String,
    /// Human description of the objective.
    pub objective: String,
    /// Current state after hysteresis.
    pub state: AlertState,
    /// Burn over the short window at the last evaluation.
    pub burn_short: f64,
    /// Burn over the long window at the last evaluation.
    pub burn_long: f64,
    /// Tick of the last state transition (0 = never transitioned).
    pub since_tick: u64,
}

/// Per-spec state machine: current severity plus the de-escalation
/// streak counter.
struct Machine {
    state: AlertState,
    calmer_streak: u32,
    since_tick: u64,
    burn_short: f64,
    burn_long: f64,
}

/// Evaluates a set of [`SloSpec`]s against a timeline and holds the
/// resulting alert state machines.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    machines: Mutex<Vec<Machine>>,
}

impl SloEngine {
    /// All machines start at `ok`.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        let machines = specs
            .iter()
            .map(|_| Machine {
                state: AlertState::Ok,
                calmer_streak: 0,
                since_tick: 0,
                burn_short: 0.0,
                burn_long: 0.0,
            })
            .collect();
        SloEngine {
            specs,
            machines: Mutex::new(machines),
        }
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluates every spec at `now` and advances its state machine.
    /// Called once per recorder tick, after [`Timeline::sample`].
    pub fn evaluate(&self, now: u64, timeline: &Timeline) -> Vec<AlertStatus> {
        let mut machines = self.machines.lock();
        for (spec, machine) in self.specs.iter().zip(machines.iter_mut()) {
            let burn_short = spec.burn(timeline, spec.short_ticks, now);
            let burn_long = spec.burn(timeline, spec.long_ticks, now);
            // The multi-window AND: the *smaller* burn decides, so both
            // windows must agree before severity moves.
            let gate = burn_short.min(burn_long);
            let target = if gate >= spec.page_burn {
                AlertState::Page
            } else if gate >= spec.warn_burn {
                AlertState::Warn
            } else {
                AlertState::Ok
            };
            machine.burn_short = burn_short;
            machine.burn_long = burn_long;
            if target > machine.state {
                crate::warn!(
                    "slo {}: {} -> {} (burn short {burn_short:.2} long {burn_long:.2}, {})",
                    spec.name,
                    machine.state.as_str(),
                    target.as_str(),
                    spec.objective()
                );
                machine.state = target;
                machine.since_tick = now;
                machine.calmer_streak = 0;
            } else if target < machine.state {
                machine.calmer_streak += 1;
                if machine.calmer_streak >= spec.clear_ticks {
                    crate::info!(
                        "slo {}: {} -> {} after {} calm ticks",
                        spec.name,
                        machine.state.as_str(),
                        target.as_str(),
                        machine.calmer_streak
                    );
                    machine.state = target;
                    machine.since_tick = now;
                    machine.calmer_streak = 0;
                }
            } else {
                machine.calmer_streak = 0;
            }
        }
        drop(machines);
        self.statuses()
    }

    /// The machines' standing as of the last [`SloEngine::evaluate`].
    pub fn statuses(&self) -> Vec<AlertStatus> {
        let machines = self.machines.lock();
        self.specs
            .iter()
            .zip(machines.iter())
            .map(|(spec, machine)| AlertStatus {
                name: spec.name.clone(),
                objective: spec.objective(),
                state: machine.state,
                burn_short: machine.burn_short,
                burn_long: machine.burn_long,
                since_tick: machine.since_tick,
            })
            .collect()
    }

    /// The worst current state across all specs (`ok` when empty).
    pub fn worst(&self) -> AlertState {
        self.machines
            .lock()
            .iter()
            .map(|m| m.state)
            .max()
            .unwrap_or(AlertState::Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::timeline::TimelineConfig;
    use std::time::Duration;

    fn timeline() -> Timeline {
        Timeline::new(TimelineConfig {
            fine_capacity: 64,
            coarse_every: 1 << 32, // fine tier only
            coarse_capacity: 1,
        })
    }

    /// A latency spec with tight test windows: short 3, long 6 ticks,
    /// warn at 1x, page at 3x the 1 ms objective, 3 calm ticks to clear.
    fn tight_latency_spec() -> SloSpec {
        SloSpec {
            short_ticks: 3,
            long_ticks: 6,
            warn_burn: 1.0,
            page_burn: 3.0,
            clear_ticks: 3,
            ..SloSpec::latency_p99("lat.p99", "lat", 1_000_000.0)
        }
    }

    #[test]
    fn latency_spike_escalates_ok_warn_page_and_clears_with_hysteresis() {
        let registry = MetricsRegistry::new();
        let timeline = timeline();
        let engine = SloEngine::new(vec![tight_latency_spec()]);
        let h = registry.histogram("lat");
        let state_at = |engine: &SloEngine| engine.statuses()[0].state;

        // Healthy traffic: ~2µs requests, well under the 1ms objective.
        let mut tick = 0;
        for _ in 0..8 {
            tick += 1;
            h.record(Duration::from_micros(2));
            timeline.sample(tick, &registry);
            engine.evaluate(tick, &timeline);
            assert_eq!(state_at(&engine), AlertState::Ok);
        }

        // Degradation: ~600µs requests -> the p99 estimate tops out at
        // the (256µs, 1ms] bucket's upper bound, exactly the objective:
        // burn 1.0 on both windows — warn, but short of page (3x).
        for _ in 0..8 {
            tick += 1;
            for _ in 0..10 {
                h.record(Duration::from_micros(600));
            }
            timeline.sample(tick, &registry);
            engine.evaluate(tick, &timeline);
        }
        assert_eq!(state_at(&engine), AlertState::Warn, "sustained 600µs warns");

        // Outage: ~300ms requests burn far past page on both windows.
        for _ in 0..8 {
            tick += 1;
            for _ in 0..10 {
                h.record(Duration::from_millis(300));
            }
            timeline.sample(tick, &registry);
            engine.evaluate(tick, &timeline);
        }
        assert_eq!(state_at(&engine), AlertState::Page, "sustained 300ms pages");
        let paged_since = engine.statuses()[0].since_tick;
        assert!(paged_since > 0);

        // Recovery: healthy again, but hysteresis holds `page` for
        // `clear_ticks` calm evaluations before stepping down.
        for calm in 1..=2 {
            tick += 1;
            h.record(Duration::from_micros(2));
            timeline.sample(tick, &registry);
            engine.evaluate(tick, &timeline);
            assert_eq!(
                state_at(&engine),
                AlertState::Page,
                "still paged after {calm} calm ticks"
            );
        }
        // Third calm tick clears.  (The old spike left the long window
        // by now: windows look at bucket deltas, not the 60s ring.)
        for _ in 0..8 {
            tick += 1;
            h.record(Duration::from_micros(2));
            timeline.sample(tick, &registry);
            engine.evaluate(tick, &timeline);
        }
        assert_eq!(state_at(&engine), AlertState::Ok, "cleared after calm run");
        assert_eq!(engine.worst(), AlertState::Ok);
    }

    #[test]
    fn short_blip_does_not_page_because_long_window_dilutes() {
        let registry = MetricsRegistry::new();
        let timeline = timeline();
        let spec = SloSpec {
            long_ticks: 20,
            ..tight_latency_spec()
        };
        let engine = SloEngine::new(vec![spec]);
        let h = registry.histogram("lat");
        // A long healthy history...
        let mut tick = 0;
        for _ in 0..20 {
            tick += 1;
            for _ in 0..10 {
                h.record(Duration::from_micros(2));
            }
            timeline.sample(tick, &registry);
            engine.evaluate(tick, &timeline);
        }
        // ...then one bad tick: the short window burns but the long
        // window's p99 stays dominated by the healthy majority.
        tick += 1;
        h.record(Duration::from_millis(300));
        timeline.sample(tick, &registry);
        let status = &engine.evaluate(tick, &timeline)[0];
        assert!(status.burn_short > 3.0, "short window sees the blip");
        assert_eq!(status.state, AlertState::Ok, "long window gates paging");
    }

    #[test]
    fn rate_ratio_burns_against_error_budget() {
        let registry = MetricsRegistry::new();
        let timeline = timeline();
        let spec = SloSpec {
            short_ticks: 4,
            long_ticks: 8,
            ..SloSpec::rate_ratio(
                "errors",
                &["serve.responses.5xx"],
                &["serve.responses."],
                0.01,
            )
        };
        let engine = SloEngine::new(vec![spec]);
        let ok = registry.counter("serve.responses.2xx");
        let bad = registry.counter("serve.responses.5xx");
        timeline.sample(1, &registry);
        // 2% errors against a 1% budget: burn 2.0 on both windows.
        ok.add(98);
        bad.add(2);
        timeline.sample(2, &registry);
        let status = &engine.evaluate(2, &timeline)[0];
        assert!(
            (status.burn_short - 2.0).abs() < 1e-9,
            "{}",
            status.burn_short
        );
        assert_eq!(status.state, AlertState::Warn);
        // No traffic at all burns 0, not NaN.
        let idle = SloEngine::new(vec![SloSpec::rate_ratio(
            "idle",
            &["nope"],
            &["nothing."],
            0.01,
        )]);
        let status = &idle.evaluate(2, &timeline)[0];
        assert_eq!(status.burn_short, 0.0);
        assert_eq!(status.state, AlertState::Ok);
    }

    #[test]
    fn event_rate_burns_against_budgeted_rate() {
        let registry = MetricsRegistry::new();
        let timeline = timeline();
        let spec = SloSpec {
            short_ticks: 2,
            long_ticks: 4,
            ..SloSpec::event_rate("rebuilds", "delta.full_rebuilds", 0.5)
        };
        let engine = SloEngine::new(vec![spec]);
        let gauge = registry.gauge("delta.full_rebuilds");
        gauge.set(0.0);
        timeline.sample(1, &registry);
        gauge.set(4.0); // 4 rebuilds in one tick against 0.5/tick
        timeline.sample(2, &registry);
        let status = &engine.evaluate(2, &timeline)[0];
        assert!(status.burn_short >= 8.0 - 1e-9, "{}", status.burn_short);
        assert_eq!(status.state, AlertState::Page);
    }

    #[test]
    fn worst_reports_highest_severity_across_specs() {
        let registry = MetricsRegistry::new();
        let timeline = timeline();
        let engine = SloEngine::new(vec![
            tight_latency_spec(),
            SloSpec::event_rate("quiet", "nothing", 1.0),
        ]);
        let h = registry.histogram("lat");
        let mut tick = 0;
        for _ in 0..6 {
            tick += 1;
            for _ in 0..10 {
                h.record(Duration::from_millis(300));
            }
            timeline.sample(tick, &registry);
            engine.evaluate(tick, &timeline);
        }
        assert_eq!(engine.worst(), AlertState::Page);
        let statuses = engine.statuses();
        assert_eq!(statuses[1].state, AlertState::Ok, "quiet spec stays ok");
    }
}
