//! # tpiin-obs — observability substrate for the TPIIN pipeline
//!
//! The paper's evaluation is entirely about per-stage numbers (graph
//! sizes after each fusion stage, segmentation counts, pattern-tree and
//! matching timings), so every crate in this workspace reports into one
//! lightweight, zero-external-dependency layer:
//!
//! * [`MetricsRegistry`] — a process-global registry of lock-free
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket duration [`Histogram`]s.
//!   Handles are `Arc`s; after first registration every update is a
//!   single atomic operation.
//! * [`Span`] — RAII phase timers with parent/child nesting.  Spans
//!   aggregate into a per-phase timing tree keyed by `/`-separated
//!   paths (`fusion/validate`, `detect/match_patterns`, …).  With
//!   profiling off ([`set_profiling`]) a span is one relaxed atomic
//!   load — cheap enough to leave compiled into every hot path.
//! * [`log`] — a leveled stderr logger controlled by the `TPIIN_LOG`
//!   environment variable or [`log::set_level`].
//! * [`RunProfile`] — a snapshot of everything above (phase tree,
//!   counters, gauges, histograms, per-thread detector stats) with a
//!   human-readable table renderer and a JSON exporter.
//! * [`mod@trace`] — per-run / per-request [`TraceContext`]s: 128-bit
//!   trace ids, a thread-safe completed-span buffer fed by the same
//!   [`Span`]s that build the phase tree, and a Chrome `trace_event`
//!   JSON exporter so any run opens in Perfetto / `chrome://tracing`.
//!
//! Phase names map onto the paper's algorithms: the fusion stages
//! `validate → contract_persons → contract_sccs → attach_trading →
//! verify_dag` follow Section 4.1, and the detection phases
//! `segment → build_tree → match_patterns → score` follow Algorithm 1
//! (segmentation) and Algorithm 2 (patterns tree + matching).

pub mod alloc;
pub mod expo;
pub mod json;
pub mod log;
pub mod metrics;
pub mod proc;
pub mod profile;
pub mod slo;
pub mod span;
pub mod timeline;
pub mod trace;

pub use alloc::{AllocStats, SpanResources};
pub use expo::text_exposition;
pub use json::Json;
pub use log::Level;
pub use metrics::{global, Counter, Gauge, Histogram, MetricsRegistry, PhaseRow, ThreadStats};
pub use proc::ProcSample;
pub use profile::{HistogramSnapshot, PhaseProfile, RunProfile, ThreadProfile};
pub use slo::{AlertState, AlertStatus, SloEngine, SloKind, SloSpec};
pub use span::{Span, SpanHandle, TimedScope};
pub use timeline::{HistDelta, HistPoint, Timeline, TimelineConfig, TimelinePoint};
pub use trace::{
    current_trace, install_thread_trace, set_active_trace, tracing_enabled, TraceContext,
    TraceEvent, TraceId,
};

use std::sync::atomic::{AtomicBool, Ordering};

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables span/metric recording.  Off by default;
/// the CLI turns it on for `--profile` / `--metrics-out` runs.
pub fn set_profiling(enabled: bool) {
    PROFILING.store(enabled, Ordering::Relaxed);
}

/// Whether spans and metrics currently record into the global registry.
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}
