//! Process-level resource sampling: RSS and page-fault counters from
//! `/proc/self/stat`, the OS-view half of the resource flight recorder
//! (the allocator ledger in [`crate::alloc`] is the heap view — RSS
//! also covers stacks, mapped files and allocator slack the ledger
//! cannot see).
//!
//! Linux-only by nature; on other platforms [`sample`] returns `None`
//! and the gauges simply stay absent.  Callers record the sample into
//! the registry via [`record_gauges`], which the CLI does right before
//! a [`RunProfile`](crate::RunProfile) capture and the serving daemon
//! does periodically from its sampler thread.

use crate::metrics::MetricsRegistry;

/// One reading of the kernel's view of this process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcSample {
    /// Resident set size in bytes (`rss` pages × page size).
    pub rss_bytes: u64,
    /// Minor page faults (no disk I/O) since process start.
    pub minor_faults: u64,
    /// Major page faults (required disk I/O) since process start.
    pub major_faults: u64,
    /// Virtual memory size in bytes.
    pub vsize_bytes: u64,
}

/// Reads `/proc/self/stat`.  Returns `None` off Linux or if the file
/// is unreadable/malformed.
pub fn sample() -> Option<ProcSample> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    parse_stat(&stat)
}

/// Parses the `/proc/<pid>/stat` line.  Field 2 (`comm`) may contain
/// spaces and parentheses, so parsing starts after the *last* `)`.
fn parse_stat(stat: &str) -> Option<ProcSample> {
    let after_comm = &stat[stat.rfind(')')? + 1..];
    // Fields after comm, 0-indexed: state(0) ... minflt(7) cminflt(8)
    // majflt(9) cmajflt(10) ... vsize(20) rss(21).
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let minor_faults: u64 = fields.get(7)?.parse().ok()?;
    let major_faults: u64 = fields.get(9)?.parse().ok()?;
    let vsize_bytes: u64 = fields.get(20)?.parse().ok()?;
    let rss_pages: u64 = fields.get(21)?.parse().ok()?;
    Some(ProcSample {
        rss_bytes: rss_pages * page_size(),
        minor_faults,
        major_faults,
        vsize_bytes,
    })
}

/// The system page size; `sysconf` is unavailable without libc
/// bindings, so read it from `/proc/self/smaps_rollup`-adjacent
/// sources is overkill — 4096 covers every platform this runs on, and
/// `KernelPageSize` in smaps would confirm it.
fn page_size() -> u64 {
    4096
}

/// Records `sample` (when available) plus the allocator totals as
/// gauges, so `/metrics`, `--metrics-out` JSON and the profile table
/// all carry the process view.
pub fn record_gauges(registry: &MetricsRegistry) -> Option<ProcSample> {
    let alloc = crate::alloc::stats();
    registry
        .gauge("process.alloc.total_bytes")
        .set(alloc.total_bytes as f64);
    registry
        .gauge("process.alloc.total_allocs")
        .set(alloc.total_allocs as f64);
    registry
        .gauge("process.alloc.live_bytes")
        .set(alloc.live_bytes as f64);
    registry
        .gauge("process.alloc.peak_bytes")
        .set(alloc.peak_bytes as f64);
    let sampled = sample()?;
    registry
        .gauge("process.rss_bytes")
        .set(sampled.rss_bytes as f64);
    registry
        .gauge("process.minor_faults")
        .set(sampled.minor_faults as f64);
    registry
        .gauge("process.major_faults")
        .set(sampled.major_faults as f64);
    registry
        .gauge("process.vsize_bytes")
        .set(sampled.vsize_bytes as f64);
    Some(sampled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_stat_with_hostile_comm() {
        // comm can contain spaces and a closing paren.
        let line = "1234 (tpiin) serve) S 1 1 1 0 -1 4194304 500 0 7 0 2 1 0 0 20 0 4 0 100 104857600 2048 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 0 0 0 0 0 0";
        let s = parse_stat(line).expect("parses");
        assert_eq!(s.minor_faults, 500);
        assert_eq!(s.major_faults, 7);
        assert_eq!(s.vsize_bytes, 104_857_600);
        assert_eq!(s.rss_bytes, 2048 * 4096);
    }

    #[test]
    fn live_sample_on_linux_is_plausible() {
        if let Some(s) = sample() {
            assert!(s.rss_bytes > 0, "a running process has resident pages");
            assert!(s.vsize_bytes >= s.rss_bytes);
        }
    }

    #[test]
    fn record_gauges_exports_alloc_totals() {
        let registry = MetricsRegistry::new();
        record_gauges(&registry);
        let gauges = registry.gauges_snapshot();
        let get = |name: &str| {
            gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(-1.0)
        };
        assert!(get("process.alloc.total_bytes") > 0.0);
        assert!(get("process.alloc.total_allocs") > 0.0);
    }
}
