//! Request/run-scoped tracing: 128-bit trace ids, a thread-safe event
//! buffer and a Chrome `trace_event` JSON exporter.
//!
//! A [`TraceContext`] collects completed spans (name + offset +
//! duration + thread) for one logical unit of work — a whole CLI run
//! (`--trace-out`) or a single daemon request (minted per connection,
//! echoed in the `x-tpiin-trace` response header).  The export format
//! is the Chrome `trace_event` "X" (complete-event) flavour, so a dump
//! opens directly in Perfetto or `chrome://tracing`.
//!
//! Two installation scopes exist:
//!
//! * [`set_active_trace`] installs a process-global context — every
//!   span on every thread records into it (the CLI run case, where one
//!   trace id must cover CLI → pipeline → detector).
//! * [`install_thread_trace`] installs a context for the *current
//!   thread* only, returning an RAII guard — the daemon case, where
//!   concurrent requests each own a private context.  A thread trace
//!   shadows the global one while installed.
//!
//! With no context installed anywhere, the whole layer costs one
//! relaxed atomic load per span ([`tracing_enabled`]).

use crate::json::Json;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// A 128-bit trace identifier, rendered as 32 lower-case hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Mints a fresh id from the wall clock and a process-wide counter
    /// (no random-number dependency; uniqueness within and across
    /// processes on one host is what the ring-buffer lookup needs).
    pub fn mint() -> TraceId {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        let seq = SEQ.fetch_add(1, Ordering::Relaxed) as u128;
        let pid = std::process::id() as u128;
        TraceId((nanos << 32) ^ (pid << 64) ^ seq.rotate_left(1))
    }

    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(text: &str) -> Option<TraceId> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(TraceId)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One completed span inside a trace: microsecond offset from the
/// context start, duration, and the recording thread's stable index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (the `/`-separated phase path).
    pub name: String,
    /// Microseconds since the context was created.
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Stable per-thread index (small integers, first-use order).
    pub tid: u64,
}

/// A thread-safe buffer of completed spans under one [`TraceId`].
pub struct TraceContext {
    id: TraceId,
    started: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("id", &self.id)
            .field("events", &self.events.lock().len())
            .finish()
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::new()
    }
}

impl TraceContext {
    /// Creates an empty context with a freshly minted id.
    pub fn new() -> TraceContext {
        TraceContext::with_id(TraceId::mint())
    }

    /// Creates an empty context under an explicit id (tests).
    pub fn with_id(id: TraceId) -> TraceContext {
        TraceContext {
            id,
            started: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// This context's trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Records one completed span that started at `started` and ran for
    /// `duration`.  Spans opened before the context existed clamp to
    /// offset zero.
    pub fn record_span(&self, name: &str, started: Instant, duration: Duration) {
        let ts = started.saturating_duration_since(self.started);
        self.events.lock().push(TraceEvent {
            name: name.to_string(),
            ts_us: ts.as_micros().min(u64::MAX as u128) as u64,
            dur_us: duration.as_micros().min(u64::MAX as u128) as u64,
            tid: thread_index(),
        });
    }

    /// Records an instantaneous marker (zero-duration span) at "now".
    pub fn record_instant(&self, name: &str) {
        self.record_span(name, Instant::now(), Duration::ZERO);
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// A copy of the recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Exports the buffer as Chrome `trace_event` JSON (the object
    /// form: `{"traceEvents": [...]}` plus the trace id), loadable in
    /// Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self) -> Json {
        let events = self.events.lock();
        Json::Object(vec![
            ("traceId".to_string(), Json::Str(self.id.to_string())),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
            (
                "traceEvents".to_string(),
                Json::Array(
                    events
                        .iter()
                        .map(|e| {
                            Json::Object(vec![
                                ("name".to_string(), Json::Str(e.name.clone())),
                                ("cat".to_string(), Json::Str("tpiin".to_string())),
                                ("ph".to_string(), Json::Str("X".to_string())),
                                ("ts".to_string(), Json::Int(e.ts_us)),
                                ("dur".to_string(), Json::Int(e.dur_us)),
                                ("pid".to_string(), Json::Int(1)),
                                ("tid".to_string(), Json::Int(e.tid)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// How many trace contexts are currently installed (global counts as
/// one, each thread installation as one).  Non-zero activates span
/// emission.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

fn global_trace_cell() -> &'static RwLock<Option<Arc<TraceContext>>> {
    static CELL: OnceLock<RwLock<Option<Arc<TraceContext>>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(None))
}

thread_local! {
    static THREAD_TRACE: std::cell::RefCell<Option<Arc<TraceContext>>> =
        const { std::cell::RefCell::new(None) };
    static THREAD_INDEX: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
}

/// A stable small integer identifying the current thread in trace
/// events, assigned in first-use order.
pub fn thread_index() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    THREAD_INDEX.with(|cell| {
        let mut idx = cell.get();
        if idx == u64::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed);
            cell.set(idx);
        }
        idx
    })
}

/// Whether any trace context is installed (one relaxed load — the hot
/// gate spans check before doing any work).
pub fn tracing_enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// Installs (or clears, with `None`) the process-global trace context.
pub fn set_active_trace(trace: Option<Arc<TraceContext>>) {
    let mut cell = global_trace_cell().write();
    match (&*cell, &trace) {
        (None, Some(_)) => {
            INSTALLED.fetch_add(1, Ordering::Relaxed);
        }
        (Some(_), None) => {
            INSTALLED.fetch_sub(1, Ordering::Relaxed);
        }
        _ => {}
    }
    *cell = trace;
}

/// The context spans on this thread record into right now: the
/// thread-installed one if any, else the global one, else `None`.
pub fn current_trace() -> Option<Arc<TraceContext>> {
    if !tracing_enabled() {
        return None;
    }
    if let Some(trace) = THREAD_TRACE.with(|t| t.borrow().clone()) {
        return Some(trace);
    }
    global_trace_cell().read().clone()
}

/// Installs `trace` as the current thread's context until the returned
/// guard drops (shadowing the global context).  The daemon installs the
/// per-request context around request handling with this.
pub fn install_thread_trace(trace: Arc<TraceContext>) -> ThreadTraceGuard {
    let previous = THREAD_TRACE.with(|t| t.borrow_mut().replace(trace));
    if previous.is_none() {
        INSTALLED.fetch_add(1, Ordering::Relaxed);
    }
    ThreadTraceGuard { previous }
}

/// RAII guard from [`install_thread_trace`]; restores the previous
/// thread context on drop.
#[must_use = "dropping the guard uninstalls the thread trace immediately"]
pub struct ThreadTraceGuard {
    previous: Option<Arc<TraceContext>>,
}

impl Drop for ThreadTraceGuard {
    fn drop(&mut self) {
        let restored = self.previous.take();
        if restored.is_none() {
            INSTALLED.fetch_sub(1, Ordering::Relaxed);
        }
        THREAD_TRACE.with(|t| *t.borrow_mut() = restored);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_roundtrip() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        let text = a.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(TraceId::parse(&text), Some(a));
        assert_eq!(TraceId::parse("nope"), None);
        assert_eq!(TraceId::parse(&text[..31]), None);
    }

    #[test]
    fn context_records_and_exports_chrome_json() {
        let trace = TraceContext::new();
        let started = Instant::now();
        trace.record_span("fusion/validate", started, Duration::from_micros(250));
        trace.record_instant("marker");
        assert_eq!(trace.event_count(), 2);
        let json = trace.to_chrome_json().to_pretty();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"fusion/validate\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains(&format!("\"traceId\": \"{}\"", trace.id())));
    }

    #[test]
    fn thread_install_shadows_global_and_restores() {
        let global = Arc::new(TraceContext::new());
        let request = Arc::new(TraceContext::new());
        set_active_trace(Some(Arc::clone(&global)));
        assert_eq!(current_trace().unwrap().id(), global.id());
        {
            let _guard = install_thread_trace(Arc::clone(&request));
            assert!(tracing_enabled());
            assert_eq!(current_trace().unwrap().id(), request.id());
        }
        assert_eq!(current_trace().unwrap().id(), global.id());
        set_active_trace(None);
    }

    #[test]
    fn disabled_without_any_installation() {
        // Other tests in this binary may install contexts; rely on the
        // guard discipline instead of asserting a global zero.
        let trace = Arc::new(TraceContext::new());
        let guard = install_thread_trace(Arc::clone(&trace));
        assert!(tracing_enabled());
        assert!(current_trace().is_some());
        drop(guard);
        assert!(THREAD_TRACE.with(|t| t.borrow().is_none()));
    }
}
