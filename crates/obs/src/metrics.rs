//! The process-global metrics registry: counters, gauges, duration
//! histograms, the aggregated span-phase tree and per-thread detector
//! statistics.
//!
//! Registration (name -> handle) takes a short-lived lock on a `BTreeMap`;
//! the returned handles are `Arc`s whose updates are single atomic
//! operations, so hot paths that cache their handle are lock-free.

use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point measurement (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the gauge value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram
/// buckets: 1µs to 4s in factor-4 steps, plus an overflow bucket.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

/// Number of slots in the sliding-window ring of a [`Histogram`].
pub const WINDOW_SLOTS: usize = 12;

/// Seconds covered by one window slot; the full window is
/// `WINDOW_SLOTS * WINDOW_SLOT_SECS` = 60 seconds.
pub const WINDOW_SLOT_SECS: u64 = 5;

/// The process-wide anchor that window periods are measured from.
fn window_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// The current 5-second window period since process start.
fn current_period() -> u64 {
    window_anchor().elapsed().as_secs() / WINDOW_SLOT_SECS
}

/// One 5-second slot of a histogram's sliding window.
#[derive(Debug)]
struct WindowSlot {
    /// Which period the counts below belong to; `u64::MAX` = never used.
    period: AtomicU64,
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for WindowSlot {
    fn default() -> Self {
        WindowSlot {
            period: AtomicU64::new(u64::MAX),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket duration histogram (lock-free recording) with both
/// cumulative-since-boot totals and a sliding 60-second window (a ring
/// of [`WINDOW_SLOTS`] five-second slots), so `/metrics` can expose
/// percentiles that reflect current load alongside lifetime totals.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    window: [WindowSlot; WINDOW_SLOTS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            window: std::array::from_fn(|_| WindowSlot::default()),
        }
    }
}

impl Histogram {
    /// Records one duration observation.
    pub fn record(&self, d: Duration) {
        self.record_at_period(current_period(), d);
    }

    /// As [`Histogram::record`] with an explicit window period
    /// (deterministic tests; production recording uses the wall clock).
    pub fn record_at_period(&self, period: u64, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);

        // Sliding window: reclaim the ring slot if it still holds a past
        // period.  The reclaim is best-effort — a recorder racing the
        // slot turnover can lose one observation at the 5s boundary,
        // which is acceptable for a load-trend window.
        let slot = &self.window[(period % WINDOW_SLOTS as u64) as usize];
        let stamped = slot.period.load(Ordering::Acquire);
        if stamped != period {
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
            slot.count.store(0, Ordering::Relaxed);
            slot.sum_ns.store(0, Ordering::Relaxed);
            let _ =
                slot.period
                    .compare_exchange(stamped, period, Ordering::AcqRel, Ordering::Relaxed);
        }
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest observation in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, aligned with [`BUCKET_BOUNDS_NS`] plus the
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// `(bucket_counts, count, sum_ns)` over the live slots of the ring
    /// at `period` — everything recorded in the last 60 seconds.
    fn window_totals_at(&self, period: u64) -> (Vec<u64>, u64, u64) {
        let oldest = period.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let mut buckets = vec![0u64; BUCKET_BOUNDS_NS.len() + 1];
        let mut count = 0u64;
        let mut sum_ns = 0u64;
        for slot in &self.window {
            let stamped = slot.period.load(Ordering::Acquire);
            if stamped == u64::MAX || stamped < oldest || stamped > period {
                continue;
            }
            for (total, b) in buckets.iter_mut().zip(&slot.buckets) {
                *total += b.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum_ns += slot.sum_ns.load(Ordering::Relaxed);
        }
        (buckets, count, sum_ns)
    }

    /// Discards the sliding-window ring, leaving the cumulative totals
    /// untouched.  The serving daemon calls this (via
    /// [`MetricsRegistry::reset_histogram_windows`]) when a snapshot
    /// hot-swap replaces the served epoch: latencies measured against
    /// the old snapshot must not leak into the new epoch's "now" view.
    pub fn reset_window(&self) {
        for slot in &self.window {
            // Stamp first: a recorder racing this reset sees a stale
            // period and re-zeroes the slot before adding its own
            // observation, so the worst case is one lost sample.
            slot.period.store(u64::MAX, Ordering::Release);
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
            slot.count.store(0, Ordering::Relaxed);
            slot.sum_ns.store(0, Ordering::Relaxed);
        }
    }

    /// Per-bucket counts over the sliding 60-second window.
    pub fn window_bucket_counts(&self) -> Vec<u64> {
        self.window_totals_at(current_period()).0
    }

    /// Observations recorded in the sliding 60-second window.
    pub fn window_count(&self) -> u64 {
        self.window_totals_at(current_period()).1
    }

    /// Sum (nanoseconds) of observations in the sliding 60-second window.
    pub fn window_sum_ns(&self) -> u64 {
        self.window_totals_at(current_period()).2
    }
}

/// Aggregated span timings and resource attribution for one phase path.
#[derive(Debug, Default)]
pub(crate) struct PhaseAgg {
    pub(crate) total_ns: AtomicU64,
    pub(crate) calls: AtomicU64,
    /// Bytes allocated on the recording thread, summed over calls.
    pub(crate) alloc_bytes: AtomicU64,
    /// Allocation calls on the recording thread, summed over calls.
    pub(crate) allocs: AtomicU64,
    /// Highest live-byte watermark any single call saw.
    pub(crate) peak_live_bytes: AtomicU64,
}

/// One row of [`MetricsRegistry::phases_snapshot_full`]: a phase path
/// with its aggregated wall-clock and allocator attribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseRow {
    /// Full `/`-separated phase path.
    pub path: String,
    /// Total wall-clock nanoseconds across calls.
    pub total_ns: u64,
    /// Spans recorded at this path.
    pub calls: u64,
    /// Bytes allocated while spans at this path were open (recording
    /// thread only), summed over calls.
    pub alloc_bytes: u64,
    /// Allocation calls while spans at this path were open.
    pub allocs: u64,
    /// Highest live-byte watermark any single call saw.
    pub peak_live_bytes: u64,
}

/// Work-stealing statistics reported by one detector worker thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Worker index within the pool.
    pub thread: usize,
    /// Work items popped from the worker's own deque (`items - steals`).
    pub batches: u64,
    /// Work items (subTPIIN roots) mined.
    pub items: u64,
    /// Work items stolen from sibling workers' deques.
    pub steals: u64,
    /// Wall-clock nanoseconds spent mining (excludes queue waiting).
    pub busy_ns: u64,
}

/// The process-global registry behind [`global`].
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    phases: RwLock<BTreeMap<String, Arc<PhaseAgg>>>,
    phase_links: RwLock<BTreeMap<String, String>>,
    threads: Mutex<Vec<ThreadStats>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(existing) = map.read().get(name) {
        return Arc::clone(existing);
    }
    Arc::clone(map.write().entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    /// Creates an empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Returns (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Returns (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Folds one span duration into the phase aggregate at `path`.
    pub fn record_phase(&self, path: &str, d: Duration) {
        self.record_phase_resources(path, d, crate::alloc::SpanResources::default());
    }

    /// Folds one span duration plus its allocator attribution into the
    /// phase aggregate at `path`.  [`crate::Span`] and
    /// [`crate::TimedScope`] call this with the deltas of the span's
    /// [`crate::alloc::checkpoint`] window.
    pub fn record_phase_resources(
        &self,
        path: &str,
        d: Duration,
        resources: crate::alloc::SpanResources,
    ) {
        let agg = get_or_insert(&self.phases, path);
        agg.total_ns
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        agg.calls.fetch_add(1, Ordering::Relaxed);
        agg.alloc_bytes
            .fetch_add(resources.alloc_bytes, Ordering::Relaxed);
        agg.allocs.fetch_add(resources.allocs, Ordering::Relaxed);
        agg.peak_live_bytes
            .fetch_max(resources.peak_live_bytes, Ordering::Relaxed);
    }

    /// Records an explicit parent link for the phase at `child` —
    /// first writer wins.  [`crate::Span::enter_under`] calls this so
    /// profile reconstruction can re-attach spans that worker threads
    /// recorded under bare relative paths.
    pub fn record_phase_link(&self, child: &str, parent: &str) {
        if self.phase_links.read().contains_key(child) {
            return;
        }
        self.phase_links
            .write()
            .entry(child.to_string())
            .or_insert_with(|| parent.to_string());
    }

    /// Sorted `(child_path, parent_path)` snapshot of phase links.
    pub fn phase_links_snapshot(&self) -> Vec<(String, String)> {
        self.phase_links
            .read()
            .iter()
            .map(|(c, p)| (c.clone(), p.clone()))
            .collect()
    }

    /// Appends one worker thread's statistics.
    pub fn record_thread(&self, stats: ThreadStats) {
        self.threads.lock().push(stats);
    }

    /// Sorted `(name, value)` snapshot of all counters.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Sorted `(name, value)` snapshot of all gauges.
    pub fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        self.gauges
            .read()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect()
    }

    /// Sorted `(name, histogram)` snapshot of all histograms.
    pub fn histograms_snapshot(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .iter()
            .map(|(name, h)| (name.clone(), Arc::clone(h)))
            .collect()
    }

    /// Sorted `(path, total_ns, calls)` snapshot of the phase tree.
    pub fn phases_snapshot(&self) -> Vec<(String, u64, u64)> {
        self.phases_snapshot_full()
            .into_iter()
            .map(|row| (row.path, row.total_ns, row.calls))
            .collect()
    }

    /// Sorted snapshot of the phase tree with allocator attribution.
    pub fn phases_snapshot_full(&self) -> Vec<PhaseRow> {
        self.phases
            .read()
            .iter()
            .map(|(path, agg)| PhaseRow {
                path: path.clone(),
                total_ns: agg.total_ns.load(Ordering::Relaxed),
                calls: agg.calls.load(Ordering::Relaxed),
                alloc_bytes: agg.alloc_bytes.load(Ordering::Relaxed),
                allocs: agg.allocs.load(Ordering::Relaxed),
                peak_live_bytes: agg.peak_live_bytes.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Resets the sliding 60-second window of every histogram whose
    /// name starts with `prefix`, leaving cumulative totals untouched.
    /// Returns how many histograms were reset.  The serving daemon
    /// calls this with `"serve.latency."` on snapshot hot-swaps.
    pub fn reset_histogram_windows(&self, prefix: &str) -> usize {
        let mut reset = 0;
        for (name, histogram) in self.histograms.read().iter() {
            if name.starts_with(prefix) {
                histogram.reset_window();
                reset += 1;
            }
        }
        reset
    }

    /// Per-thread statistics, ordered by worker index.
    pub fn threads_snapshot(&self) -> Vec<ThreadStats> {
        let mut threads = self.threads.lock().clone();
        threads.sort_by_key(|t| t.thread);
        threads
    }

    /// Clears every metric, phase aggregate and thread record.  The CLI
    /// calls this once before a profiled run so the exported
    /// [`crate::RunProfile`] covers exactly one command.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.phases.write().clear();
        self.phase_links.write().clear();
        self.threads.lock().clear();
    }
}

/// The process-global registry every span, counter and the CLI report to.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("c").get(), 5);
        registry.gauge("g").set(2.5);
        assert_eq!(registry.gauge("g").get(), 2.5);
        assert_eq!(registry.counters_snapshot(), vec![("c".to_string(), 5)]);
    }

    #[test]
    fn histogram_buckets_cover_all_magnitudes() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(500)); // bucket 0 (<= 1µs)
        h.record(Duration::from_micros(100)); // <= 256µs
        h.record(Duration::from_millis(2)); // <= 4ms
        h.record(Duration::from_secs(60)); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_ns(), 60_000_000_000);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 4);
        assert_eq!(buckets[0], 1);
        assert_eq!(*buckets.last().unwrap(), 1);
    }

    #[test]
    fn phase_aggregation_sums_durations_and_calls() {
        let registry = MetricsRegistry::new();
        registry.record_phase("a/b", Duration::from_nanos(10));
        registry.record_phase("a/b", Duration::from_nanos(30));
        registry.record_phase("a", Duration::from_nanos(50));
        assert_eq!(
            registry.phases_snapshot(),
            vec![("a".to_string(), 50, 1), ("a/b".to_string(), 40, 2)]
        );
    }

    #[test]
    fn reset_clears_everything() {
        let registry = MetricsRegistry::new();
        registry.counter("x").inc();
        registry.record_phase("p", Duration::from_nanos(1));
        registry.record_phase_link("p", "root");
        registry.record_thread(ThreadStats::default());
        registry.reset();
        assert!(registry.counters_snapshot().is_empty());
        assert!(registry.phases_snapshot().is_empty());
        assert!(registry.phase_links_snapshot().is_empty());
        assert!(registry.threads_snapshot().is_empty());
    }

    #[test]
    fn phase_links_are_first_writer_wins() {
        let registry = MetricsRegistry::new();
        registry.record_phase_link("score", "detect");
        registry.record_phase_link("score", "other");
        assert_eq!(
            registry.phase_links_snapshot(),
            vec![("score".to_string(), "detect".to_string())]
        );
    }

    #[test]
    fn window_tracks_only_recent_periods() {
        let h = Histogram::default();
        // Two observations in period 0, one in period 3.
        h.record_at_period(0, Duration::from_nanos(500));
        h.record_at_period(0, Duration::from_micros(100));
        h.record_at_period(3, Duration::from_millis(2));
        // At period 3 everything is within the 12-slot window.
        let (buckets, count, sum) = h.window_totals_at(3);
        assert_eq!(count, 3);
        assert_eq!(buckets.iter().sum::<u64>(), 3);
        assert_eq!(sum, 500 + 100_000 + 2_000_000);
        // Far in the future only period 3 survives ...
        let (_, count, sum) = h.window_totals_at(3 + WINDOW_SLOTS as u64 - 1);
        assert_eq!(count, 1);
        assert_eq!(sum, 2_000_000);
        // ... and later still the window is empty, while the cumulative
        // totals keep everything.
        let (_, count, _) = h.window_totals_at(100);
        assert_eq!(count, 0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn phase_resources_sum_and_max() {
        let registry = MetricsRegistry::new();
        let res = |bytes, allocs, peak| crate::alloc::SpanResources {
            alloc_bytes: bytes,
            allocs,
            peak_live_bytes: peak,
        };
        registry.record_phase_resources("f/v", Duration::from_nanos(5), res(100, 2, 900));
        registry.record_phase_resources("f/v", Duration::from_nanos(5), res(50, 1, 400));
        let rows = registry.phases_snapshot_full();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].path, "f/v");
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[0].alloc_bytes, 150);
        assert_eq!(rows[0].allocs, 3);
        assert_eq!(rows[0].peak_live_bytes, 900, "peak is a max, not a sum");
    }

    #[test]
    fn window_reset_clears_ring_but_keeps_totals() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("serve.latency.groups");
        h.record_at_period(3, Duration::from_micros(10));
        h.record_at_period(3, Duration::from_micros(20));
        assert_eq!(h.window_totals_at(3).1, 2);
        let other = registry.histogram("detect.match_root");
        other.record_at_period(3, Duration::from_micros(5));
        assert_eq!(registry.reset_histogram_windows("serve.latency."), 1);
        assert_eq!(h.window_totals_at(3).1, 0, "window cleared");
        assert_eq!(h.count(), 2, "cumulative totals survive");
        assert_eq!(other.window_totals_at(3).1, 1, "other prefixes untouched");
        // New observations land cleanly in the reset ring.
        h.record_at_period(4, Duration::from_micros(30));
        assert_eq!(h.window_totals_at(4).1, 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn idle_gap_longer_than_window_excludes_every_stale_slot() {
        let h = Histogram::default();
        // Fill several slots, then go idle for much longer than the
        // full window (several ring revolutions), then record again.
        // The ring slots still stamped with pre-gap periods must not
        // leak into the window totals — only the post-gap observation
        // counts, even though most slots were never physically
        // reclaimed by a recorder landing on them.
        for period in 0..4 {
            h.record_at_period(period, Duration::from_micros(10));
        }
        let resume = 4 + 3 * WINDOW_SLOTS as u64 + 1;
        h.record_at_period(resume, Duration::from_millis(7));
        let (buckets, count, sum) = h.window_totals_at(resume);
        assert_eq!(count, 1, "stale pre-gap slots leaked into the window");
        assert_eq!(sum, 7_000_000);
        assert_eq!(buckets.iter().sum::<u64>(), 1);
        // Cumulative totals still remember everything.
        assert_eq!(h.count(), 5);
        // The pre-gap observations stay visible *at their own time*:
        // totals evaluated inside the original window still see them.
        let (_, old_count, _) = h.window_totals_at(3);
        assert_eq!(old_count, 4);
    }

    #[test]
    fn window_ring_slot_is_reclaimed_after_wraparound() {
        let h = Histogram::default();
        h.record_at_period(1, Duration::from_nanos(10));
        // Period 1 + WINDOW_SLOTS lands on the same ring slot; the old
        // counts must be discarded, not added to.
        h.record_at_period(1 + WINDOW_SLOTS as u64, Duration::from_nanos(20));
        let (_, count, sum) = h.window_totals_at(1 + WINDOW_SLOTS as u64);
        assert_eq!(count, 1);
        assert_eq!(sum, 20);
        assert_eq!(h.count(), 2);
    }
}
