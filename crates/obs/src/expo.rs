//! Prometheus-style text exposition of a [`MetricsRegistry`].
//!
//! The serving daemon's `/metrics` endpoint renders the whole registry
//! in the classic text format (`# TYPE` lines, `_bucket{le=...}` series
//! for histograms) so any scraper-shaped tooling can watch request
//! counts and latency distributions without a JSON parser.  Durations
//! stay in nanoseconds — the histogram bucket bounds are
//! [`BUCKET_BOUNDS_NS`] verbatim, and the suffix `_sum_ns` makes the
//! unit explicit.

use crate::metrics::{MetricsRegistry, BUCKET_BOUNDS_NS};
use std::fmt::Write as _;

/// Rewrites a registry metric name (`serve.requests.healthz`) into a
/// Prometheus-legal identifier (`tpiin_serve_requests_healthz`).
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("tpiin_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders every counter, gauge and histogram of `registry` in the
/// Prometheus text exposition format.
pub fn text_exposition(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters_snapshot() {
        let name = metric_name(&name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauges_snapshot() {
        let name = metric_name(&name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, histogram) in registry.histograms_snapshot() {
        let name = metric_name(&name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        write_histogram_series(&mut out, &name, &histogram.bucket_counts());
        let _ = writeln!(out, "{name}_sum_ns {}", histogram.sum_ns());
        let _ = writeln!(out, "{name}_count {}", histogram.count());
        // The sliding 60s window, as a second histogram series: the
        // cumulative one answers "since boot", this one answers "now".
        let window = format!("{name}_window");
        let _ = writeln!(out, "# TYPE {window} histogram");
        write_histogram_series(&mut out, &window, &histogram.window_bucket_counts());
        let _ = writeln!(out, "{window}_sum_ns {}", histogram.window_sum_ns());
        let _ = writeln!(out, "{window}_count {}", histogram.window_count());
    }
    out
}

/// Writes the `_bucket{le=...}` lines of one histogram series
/// (cumulative-across-buckets, as the exposition format requires).
fn write_histogram_series(out: &mut String, name: &str, buckets: &[u64]) {
    let mut cumulative = 0u64;
    for (count, bound) in buckets.iter().zip(
        BUCKET_BOUNDS_NS
            .iter()
            .map(|b| b.to_string())
            .chain(std::iter::once("+Inf".to_string())),
    ) {
        cumulative += count;
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_all_metric_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("serve.requests.healthz").add(3);
        registry.gauge("ingest.records").set(41.5);
        let h = registry.histogram("serve.latency.groups");
        h.record(Duration::from_nanos(500));
        h.record(Duration::from_secs(60));

        let text = text_exposition(&registry);
        assert!(text.contains("# TYPE tpiin_serve_requests_healthz counter"));
        assert!(text.contains("tpiin_serve_requests_healthz 3"));
        assert!(text.contains("# TYPE tpiin_ingest_records gauge"));
        assert!(text.contains("tpiin_ingest_records 41.5"));
        assert!(text.contains("# TYPE tpiin_serve_latency_groups histogram"));
        assert!(text.contains("tpiin_serve_latency_groups_bucket{le=\"1000\"} 1"));
        assert!(text.contains("tpiin_serve_latency_groups_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tpiin_serve_latency_groups_count 2"));
        // The sliding-window twin series: both observations were just
        // recorded, so the window agrees with the cumulative totals.
        assert!(text.contains("# TYPE tpiin_serve_latency_groups_window histogram"));
        assert!(text.contains("tpiin_serve_latency_groups_window_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tpiin_serve_latency_groups_window_count 2"));
    }

    #[test]
    fn bucket_counts_are_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h");
        h.record(Duration::from_nanos(10)); // first bucket
        h.record(Duration::from_micros(2)); // second bucket
        let text = text_exposition(&registry);
        assert!(text.contains("tpiin_h_bucket{le=\"1000\"} 1"));
        assert!(text.contains("tpiin_h_bucket{le=\"4000\"} 2"));
        assert!(text.contains("tpiin_h_bucket{le=\"+Inf\"} 2"));
    }
}
