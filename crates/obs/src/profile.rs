//! [`RunProfile`]: a point-in-time snapshot of the global registry with
//! a human-readable table renderer (for `--profile`) and a JSON
//! exporter (for `--metrics-out`).

use crate::json::Json;
use crate::metrics::{MetricsRegistry, PhaseRow, ThreadStats, BUCKET_BOUNDS_NS};
use serde::{Deserialize, Serialize};

/// One node of the phase timing tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Leaf name (last `/`-segment of the path).
    pub name: String,
    /// Full `/`-separated path.
    pub path: String,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u64,
    /// Number of spans recorded at this path.
    pub calls: u64,
    /// Bytes allocated on the recording thread while spans at this
    /// path were open, summed over calls.
    #[serde(default)]
    pub alloc_bytes: u64,
    /// Allocation calls attributed to this phase.
    #[serde(default)]
    pub allocs: u64,
    /// Highest live-heap watermark any single call at this path saw on
    /// its recording thread (a max, not a sum).
    #[serde(default)]
    pub peak_live_bytes: u64,
    /// Child phases, ordered by path.
    pub children: Vec<PhaseProfile>,
}

/// A histogram snapshot: bucket counts aligned with
/// [`BUCKET_BOUNDS_NS`] plus one overflow bucket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations in nanoseconds.
    pub sum_ns: u64,
    /// Largest observation in nanoseconds.
    pub max_ns: u64,
    /// Per-bucket observation counts.
    pub buckets: Vec<u64>,
}

/// Per-thread detector work-stealing statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreadProfile {
    /// Worker index.
    pub thread: usize,
    /// Work items popped from the worker's own deque (`items - steals`).
    pub batches: u64,
    /// Work items mined.
    pub items: u64,
    /// Work items stolen from sibling workers.
    pub steals: u64,
    /// Nanoseconds spent mining.
    pub busy_ns: u64,
}

impl From<ThreadStats> for ThreadProfile {
    fn from(s: ThreadStats) -> ThreadProfile {
        ThreadProfile {
            thread: s.thread,
            batches: s.batches,
            items: s.items,
            steals: s.steals,
            busy_ns: s.busy_ns,
        }
    }
}

/// Everything a profiled run recorded, ready to render or export.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Root phases of the timing tree.
    pub phases: Vec<PhaseProfile>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-thread detector statistics, ordered by worker index.
    pub threads: Vec<ThreadProfile>,
    /// Explicit `(child_path, parent_path)` span links recorded via
    /// [`crate::Span::enter_under`]; already applied to `phases`.
    #[serde(default)]
    pub links: Vec<(String, String)>,
}

impl RunProfile {
    /// Snapshots the process-global registry.
    pub fn capture() -> RunProfile {
        RunProfile::capture_from(crate::metrics::global())
    }

    /// Snapshots an explicit registry (tests).
    pub fn capture_from(registry: &MetricsRegistry) -> RunProfile {
        let links = registry.phase_links_snapshot();
        RunProfile {
            phases: build_tree(registry.phases_snapshot_full(), &links),
            counters: registry.counters_snapshot(),
            gauges: registry.gauges_snapshot(),
            histograms: registry
                .histograms_snapshot()
                .into_iter()
                .map(|(name, h)| HistogramSnapshot {
                    name,
                    count: h.count(),
                    sum_ns: h.sum_ns(),
                    max_ns: h.max_ns(),
                    buckets: h.bucket_counts(),
                })
                .collect(),
            threads: registry
                .threads_snapshot()
                .into_iter()
                .map(ThreadProfile::from)
                .collect(),
            links,
        }
    }

    /// Finds a phase by its full `/`-separated path.
    pub fn phase(&self, path: &str) -> Option<&PhaseProfile> {
        fn walk<'a>(nodes: &'a [PhaseProfile], path: &str) -> Option<&'a PhaseProfile> {
            for node in nodes {
                if node.path == path {
                    return Some(node);
                }
                if path.starts_with(&node.path)
                    && path.as_bytes().get(node.path.len()) == Some(&b'/')
                {
                    return walk(&node.children, path);
                }
            }
            None
        }
        walk(&self.phases, path)
    }

    /// Renders the phase-timing table (plus thread and counter sections
    /// when present) for `--profile` output.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>12} {:>8} {:>12} {:>10} {:>9} {:>10}\n",
            "phase", "total", "calls", "mean", "alloc", "allocs", "peak"
        ));
        fn render_nodes(out: &mut String, nodes: &[PhaseProfile], depth: usize) {
            for node in nodes {
                let label = format!("{}{}", "  ".repeat(depth), node.name);
                let mean = node.total_ns.checked_div(node.calls).unwrap_or(0);
                out.push_str(&format!(
                    "{:<40} {:>12} {:>8} {:>12} {:>10} {:>9} {:>10}\n",
                    label,
                    fmt_ns(node.total_ns),
                    node.calls,
                    fmt_ns(mean),
                    fmt_bytes(node.alloc_bytes),
                    node.allocs,
                    fmt_bytes(node.peak_live_bytes)
                ));
                render_nodes(out, &node.children, depth + 1);
            }
        }
        render_nodes(&mut out, &self.phases, 0);
        if !self.threads.is_empty() {
            out.push_str(&format!(
                "{:<40} {:>12} {:>8} {:>12} {:>8}\n",
                "thread", "busy", "batches", "items", "steals"
            ));
            for t in &self.threads {
                out.push_str(&format!(
                    "{:<40} {:>12} {:>8} {:>12} {:>8}\n",
                    format!("worker {}", t.thread),
                    fmt_ns(t.busy_ns),
                    t.batches,
                    t.items,
                    t.steals
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<40} {:>12}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<40} {value:>12}\n"));
            }
        }
        out
    }

    /// Exports the whole profile as a JSON value.
    pub fn to_json(&self) -> Json {
        fn phase_json(node: &PhaseProfile) -> Json {
            Json::Object(vec![
                ("name".to_string(), Json::Str(node.name.clone())),
                ("path".to_string(), Json::Str(node.path.clone())),
                ("total_ns".to_string(), Json::Int(node.total_ns)),
                ("calls".to_string(), Json::Int(node.calls)),
                ("alloc_bytes".to_string(), Json::Int(node.alloc_bytes)),
                ("allocs".to_string(), Json::Int(node.allocs)),
                (
                    "peak_live_bytes".to_string(),
                    Json::Int(node.peak_live_bytes),
                ),
                (
                    "children".to_string(),
                    Json::Array(node.children.iter().map(phase_json).collect()),
                ),
            ])
        }
        Json::Object(vec![
            (
                "phases".to_string(),
                Json::Array(self.phases.iter().map(phase_json).collect()),
            ),
            (
                "counters".to_string(),
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::Int(*value)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Json::Object(
                    self.gauges
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::Float(*value)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Array(
                    self.histograms
                        .iter()
                        .map(|h| {
                            Json::Object(vec![
                                ("name".to_string(), Json::Str(h.name.clone())),
                                ("count".to_string(), Json::Int(h.count)),
                                ("sum_ns".to_string(), Json::Int(h.sum_ns)),
                                ("max_ns".to_string(), Json::Int(h.max_ns)),
                                (
                                    "bucket_bounds_ns".to_string(),
                                    Json::Array(
                                        BUCKET_BOUNDS_NS.iter().map(|&b| Json::Int(b)).collect(),
                                    ),
                                ),
                                (
                                    "buckets".to_string(),
                                    Json::Array(h.buckets.iter().map(|&c| Json::Int(c)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "threads".to_string(),
                Json::Array(
                    self.threads
                        .iter()
                        .map(|t| {
                            Json::Object(vec![
                                ("thread".to_string(), Json::Int(t.thread as u64)),
                                ("batches".to_string(), Json::Int(t.batches)),
                                ("items".to_string(), Json::Int(t.items)),
                                ("steals".to_string(), Json::Int(t.steals)),
                                ("busy_ns".to_string(), Json::Int(t.busy_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Whether `path` already sits underneath `parent` in the path tree.
fn is_under(path: &str, parent: &str) -> bool {
    path.len() > parent.len() && path.starts_with(parent) && path.as_bytes()[parent.len()] == b'/'
}

/// Resolves the absolute path a linked span should appear under, by
/// following explicit parent links (bounded by `depth` against cycles).
fn absolutize(links: &[(String, String)], path: &str, depth: usize) -> String {
    if depth == 0 {
        return path.to_string();
    }
    match links.iter().find(|(child, _)| child == path) {
        Some((_, parent)) if !is_under(path, parent) => {
            format!("{}/{path}", absolutize(links, parent, depth - 1))
        }
        _ => path.to_string(),
    }
}

/// Builds the phase tree from sorted [`PhaseRow`]s.
/// A child path whose parent was never recorded directly (e.g. workers
/// recorded `detect/score` but nothing recorded `detect`) gets a
/// zero-duration parent node so the tree stays connected.
///
/// `links` carries explicit `(child_path, parent_path)` span links: a
/// span recorded on a worker thread under a bare relative path (where
/// the thread-local stack was empty, so string-prefix nesting fails)
/// is re-attached under its recorded parent, along with everything
/// nested below it.  Before the links existed such spans surfaced as
/// spurious roots whenever threads interleaved.
fn build_tree(rows: Vec<PhaseRow>, links: &[(String, String)]) -> Vec<PhaseProfile> {
    // child -> rewritten absolute path, for links not already satisfied
    // by the path prefix.
    let remap: Vec<(String, String)> = links
        .iter()
        .filter(|(child, parent)| !is_under(child, parent))
        .map(|(child, _)| (child.clone(), absolutize(links, child, links.len() + 1)))
        .collect();
    let mut roots: Vec<PhaseProfile> = Vec::new();
    for row in rows {
        let best = remap
            .iter()
            .filter(|(child, _)| row.path == *child || is_under(&row.path, child))
            .max_by_key(|(child, _)| child.len());
        let effective = match best {
            Some((child, target)) => format!("{target}{}", &row.path[child.len()..]),
            None => row.path.clone(),
        };
        insert(&mut roots, &effective, &row);
    }
    roots
}

fn insert(nodes: &mut Vec<PhaseProfile>, path: &str, row: &PhaseRow) {
    // Walk down one level at a time, materialising missing ancestors.
    let mut level = nodes;
    let mut consumed = 0usize;
    loop {
        let rest = &path[consumed..];
        let (segment, is_leaf) = match rest.find('/') {
            Some(i) => (&rest[..i], false),
            None => (rest, true),
        };
        let node_path_len = consumed + segment.len();
        let node_path = &path[..node_path_len];
        let idx = match level.iter().position(|n| n.path == node_path) {
            Some(idx) => idx,
            None => {
                level.push(PhaseProfile {
                    name: segment.to_string(),
                    path: node_path.to_string(),
                    total_ns: 0,
                    calls: 0,
                    alloc_bytes: 0,
                    allocs: 0,
                    peak_live_bytes: 0,
                    children: Vec::new(),
                });
                level.len() - 1
            }
        };
        if is_leaf {
            level[idx].total_ns += row.total_ns;
            level[idx].calls += row.calls;
            level[idx].alloc_bytes += row.alloc_bytes;
            level[idx].allocs += row.allocs;
            level[idx].peak_live_bytes = level[idx].peak_live_bytes.max(row.peak_live_bytes);
            return;
        }
        consumed = node_path_len + 1;
        level = &mut level[idx].children;
    }
}

/// Formats a byte count with an adaptive unit.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2}GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.2}MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

/// Formats a nanosecond count with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn row(path: &str, total_ns: u64, calls: u64) -> PhaseRow {
        PhaseRow {
            path: path.to_string(),
            total_ns,
            calls,
            ..PhaseRow::default()
        }
    }

    #[test]
    fn tree_materialises_missing_parents() {
        let rows = vec![
            row("detect/score", 40, 4),
            row("fusion", 100, 1),
            row("fusion/validate", 60, 1),
        ];
        let tree = build_tree(rows, &[]);
        assert_eq!(tree.len(), 2);
        let detect = tree.iter().find(|n| n.path == "detect").unwrap();
        assert_eq!(detect.calls, 0);
        assert_eq!(detect.children[0].path, "detect/score");
        assert_eq!(detect.children[0].total_ns, 40);
        let fusion = tree.iter().find(|n| n.path == "fusion").unwrap();
        assert_eq!(fusion.total_ns, 100);
        assert_eq!(fusion.children[0].name, "validate");
    }

    #[test]
    fn explicit_links_reattach_interleaved_worker_spans() {
        // A worker thread recorded `match_patterns` (and a nested
        // `match_patterns/score`) with an empty thread-local stack, so
        // the paths lack the `detect/` prefix; the explicit link says
        // where they belong.
        let rows = vec![
            row("detect", 100, 1),
            row("match_patterns", 40, 4),
            row("match_patterns/score", 10, 4),
        ];
        let links = vec![("match_patterns".to_string(), "detect".to_string())];
        let tree = build_tree(rows, &links);
        assert_eq!(tree.len(), 1, "no spurious roots: {tree:?}");
        let detect = &tree[0];
        assert_eq!(detect.path, "detect");
        let matched = detect
            .children
            .iter()
            .find(|n| n.path == "detect/match_patterns")
            .expect("re-attached under detect");
        assert_eq!(matched.total_ns, 40);
        assert_eq!(matched.children[0].path, "detect/match_patterns/score");
        assert_eq!(matched.children[0].total_ns, 10);
    }

    #[test]
    fn chained_links_resolve_transitively() {
        let rows = vec![row("leaf", 5, 1), row("mid", 9, 1)];
        let links = vec![
            ("leaf".to_string(), "mid".to_string()),
            ("mid".to_string(), "root".to_string()),
        ];
        let tree = build_tree(rows, &links);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].path, "root");
        assert_eq!(tree[0].children[0].path, "root/mid");
        assert_eq!(tree[0].children[0].children[0].path, "root/mid/leaf");
    }

    #[test]
    fn capture_renders_and_exports() {
        let registry = MetricsRegistry::new();
        registry.record_phase("fusion", Duration::from_millis(5));
        registry.record_phase("fusion/validate", Duration::from_millis(2));
        registry.counter("arcs_dropped").add(7);
        registry.gauge("suspicious_fraction").set(0.05);
        registry
            .histogram("match_root")
            .record(Duration::from_micros(3));
        registry.record_thread(ThreadStats {
            thread: 0,
            batches: 2,
            items: 64,
            steals: 3,
            busy_ns: 1_000,
        });
        let profile = RunProfile::capture_from(&registry);
        assert_eq!(profile.phase("fusion/validate").unwrap().calls, 1);
        assert!(profile.phase("fusion/missing").is_none());

        let table = profile.render_table();
        assert!(table.contains("fusion"));
        assert!(table.contains("  validate"));
        assert!(table.contains("worker 0"));
        assert!(table.contains("arcs_dropped"));

        let json = profile.to_json().to_pretty();
        assert!(json.contains("\"path\": \"fusion/validate\""));
        assert!(json.contains("\"arcs_dropped\": 7"));
        assert!(json.contains("\"suspicious_fraction\": 0.05"));
        assert!(json.contains("\"match_root\""));
        assert!(json.contains("\"steals\": 3"));
        assert!(json.contains("\"busy_ns\": 1000"));
    }

    #[test]
    fn fmt_ns_picks_unit() {
        assert_eq!(fmt_ns(750), "750ns");
        assert_eq!(fmt_ns(2_500), "2.5us");
        assert_eq!(fmt_ns(3_000_000), "3.000ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
    }
}
