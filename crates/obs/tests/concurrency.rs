//! Integration tests for tpiin-obs: multi-threaded metric hammering,
//! span-tree nesting, and `TPIIN_LOG`-style level filtering.
//!
//! Tests that flip process-global state (the profiling flag, the log
//! level) serialise on [`GLOBAL_STATE`]; metric names are unique per
//! test so assertions are immune to other tests sharing the global
//! registry.

use std::sync::Mutex;
use std::time::Duration;
use tpiin_obs::{global, set_profiling, Level, MetricsRegistry, Span, TimedScope};

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn lock_global() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn eight_threads_hammering_counters_and_histograms_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let shared = registry.counter("conc.shared");
                let own = registry.counter(&format!("conc.thread{t}"));
                let hist = registry.histogram("conc.latency");
                for i in 0..PER_THREAD {
                    shared.inc();
                    own.add(2);
                    hist.record(Duration::from_nanos(i % 5_000_000));
                    registry.record_phase("conc/phase", Duration::from_nanos(1));
                }
            });
        }
    });

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(registry.counter("conc.shared").get(), total);
    for t in 0..THREADS {
        assert_eq!(
            registry.counter(&format!("conc.thread{t}")).get(),
            2 * PER_THREAD
        );
    }

    let hist = registry.histogram("conc.latency");
    assert_eq!(hist.count(), total);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), total);
    let per_thread_sum: u64 = (0..PER_THREAD).map(|i| i % 5_000_000).sum();
    assert_eq!(hist.sum_ns(), THREADS as u64 * per_thread_sum);

    let phases = registry.phases_snapshot();
    let (_, phase_ns, phase_calls) = phases
        .iter()
        .find(|(path, _, _)| path == "conc/phase")
        .expect("phase recorded");
    assert_eq!(*phase_calls, total);
    assert_eq!(*phase_ns, total);
}

#[test]
fn spans_nest_into_a_parent_child_tree() {
    let _guard = lock_global();
    set_profiling(true);

    {
        let outer = Span::enter("nest_outer");
        assert_eq!(outer.path(), Some("nest_outer"));
        {
            let inner = Span::enter("nest_inner");
            assert_eq!(inner.path(), Some("nest_outer/nest_inner"));
            let absolute = Span::at("nest_absolute/leaf");
            assert_eq!(absolute.path(), Some("nest_absolute/leaf"));
        }
        // After the inner span closed, new siblings nest under the outer
        // span again rather than under the closed child.
        let sibling = Span::enter("nest_sibling");
        assert_eq!(sibling.path(), Some("nest_outer/nest_sibling"));
    }

    set_profiling(false);

    let phases = global().phases_snapshot();
    let calls = |path: &str| {
        phases
            .iter()
            .find(|(p, _, _)| p == path)
            .map(|(_, _, calls)| *calls)
    };
    assert_eq!(calls("nest_outer"), Some(1));
    assert_eq!(calls("nest_outer/nest_inner"), Some(1));
    assert_eq!(calls("nest_outer/nest_sibling"), Some(1));
    assert_eq!(calls("nest_absolute/leaf"), Some(1));
}

#[test]
fn spans_are_inert_when_profiling_is_off() {
    let _guard = lock_global();
    set_profiling(false);

    {
        let span = Span::enter("inert_outer");
        assert_eq!(span.path(), None);
        let inner = Span::at("inert_inner");
        assert_eq!(inner.path(), None);
    }

    let phases = global().phases_snapshot();
    assert!(phases
        .iter()
        .all(|(path, _, _)| !path.starts_with("inert_")));
}

#[test]
fn timed_scope_measures_even_without_profiling() {
    let _guard = lock_global();
    set_profiling(false);

    let registry = MetricsRegistry::new();
    let scope = TimedScope::start();
    std::thread::sleep(Duration::from_millis(2));
    let elapsed = scope.finish_into(&registry, "scope_off");
    assert!(elapsed >= Duration::from_millis(2));
    assert!(registry.phases_snapshot().is_empty());

    set_profiling(true);
    let scope = TimedScope::start();
    let elapsed = scope.finish_into(&registry, "scope_on");
    set_profiling(false);
    let phases = registry.phases_snapshot();
    assert_eq!(phases.len(), 1);
    assert_eq!(phases[0].0, "scope_on");
    assert!(elapsed.as_nanos() > 0);
}

#[test]
fn log_level_filtering_matches_tpiin_log_semantics() {
    let _guard = lock_global();
    let previous = tpiin_obs::log::max_level();

    // Default CLI behaviour: explicit level wins.
    tpiin_obs::log::set_level(Some(Level::Info));
    assert!(tpiin_obs::log::enabled(Level::Error));
    assert!(tpiin_obs::log::enabled(Level::Info));
    assert!(!tpiin_obs::log::enabled(Level::Debug));
    assert!(!tpiin_obs::log::enabled(Level::Trace));

    // `TPIIN_LOG=off` silences everything, including errors.
    tpiin_obs::log::set_level(None);
    assert!(!tpiin_obs::log::enabled(Level::Error));
    assert_eq!(tpiin_obs::log::max_level(), None);

    tpiin_obs::log::set_level(Some(Level::Trace));
    assert!(tpiin_obs::log::enabled(Level::Trace));

    // The env-var strings the logger accepts.
    assert_eq!("debug".parse::<Level>(), Ok(Level::Debug));
    assert!("loud".parse::<Level>().is_err());

    tpiin_obs::log::set_level(previous);
}
