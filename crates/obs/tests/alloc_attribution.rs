//! Allocator attribution through the span layer: spans must report the
//! bytes and allocation calls made while they were open, and nested
//! spans must fold consistently into their parents.
//!
//! Every test records under a unique path in the process-global
//! registry (integration-test binaries get their own process, but the
//! tests within it share the registry and run concurrently).

use std::sync::atomic::{AtomicU64, Ordering};
use tpiin_obs::{global, set_profiling, Span, TimedScope};

use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn unique_path(stem: &str) -> String {
    format!("alloc_attr/{stem}{}", CASE.fetch_add(1, Ordering::Relaxed))
}

#[test]
fn span_reports_boxed_allocations() {
    set_profiling(true);
    let path = unique_path("boxed");
    const N: usize = 32;
    const SIZE: usize = 2048;
    {
        let _span = Span::at(&path);
        let held: Vec<Box<[u8; SIZE]>> = (0..N).map(|_| Box::new([0u8; SIZE])).collect();
        assert_eq!(held.len(), N);
    }
    let rows = global().phases_snapshot_full();
    let row = rows
        .iter()
        .find(|r| r.path == path)
        .expect("span recorded a phase row");
    assert!(row.allocs >= N as u64, "allocs = {}", row.allocs);
    assert!(
        row.alloc_bytes >= (N * SIZE) as u64,
        "alloc_bytes = {}",
        row.alloc_bytes
    );
    // Plausibility ceiling: the span allocated N boxes plus the Vec's
    // backing storage and a handful of incidental allocations — not
    // megabytes beyond it.
    assert!(
        row.alloc_bytes < (N * SIZE) as u64 + 1_048_576,
        "alloc_bytes = {} is implausibly large",
        row.alloc_bytes
    );
    // All N boxes were live at once, so the peak watermark must have
    // been at least their combined size.
    assert!(
        row.peak_live_bytes >= (N * SIZE) as u64,
        "peak_live_bytes = {}",
        row.peak_live_bytes
    );
}

#[test]
fn timed_scope_reports_resources() {
    set_profiling(true);
    let path = unique_path("scope");
    let scope = TimedScope::start();
    let buffer = vec![1u8; 100_000];
    assert_eq!(buffer.len(), 100_000);
    drop(buffer);
    scope.finish(&path);
    let rows = global().phases_snapshot_full();
    let row = rows.iter().find(|r| r.path == path).expect("scope row");
    assert!(row.alloc_bytes >= 100_000, "bytes = {}", row.alloc_bytes);
    assert!(row.allocs >= 1);
    assert!(row.peak_live_bytes >= 100_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Nested child spans' counters must sum consistently into the
    /// parent: the parent's byte/call counts are supersets of the
    /// children's combined counts (the thread-local counters are
    /// cumulative), and the parent's peak watermark dominates every
    /// child's (the save/reset/fold protocol).
    #[test]
    fn nested_spans_sum_consistently(sizes in proptest::collection::vec(1usize..4096, 1..8)) {
        set_profiling(true);
        let parent_path = unique_path("nest");
        {
            let _parent = Span::at(&parent_path);
            for (i, &size) in sizes.iter().enumerate() {
                let _child = Span::at(&format!("{parent_path}/c{i}"));
                let buffer = vec![0u8; size];
                prop_assert_eq!(buffer.len(), size);
            }
        }
        let rows = global().phases_snapshot_full();
        let parent = rows
            .iter()
            .find(|r| r.path == parent_path)
            .expect("parent row");
        let child_prefix = format!("{parent_path}/");
        let children: Vec<_> = rows
            .iter()
            .filter(|r| r.path.starts_with(&child_prefix))
            .collect();
        prop_assert_eq!(children.len(), sizes.len());
        let child_bytes: u64 = children.iter().map(|r| r.alloc_bytes).sum();
        let child_allocs: u64 = children.iter().map(|r| r.allocs).sum();
        let max_child_peak = children.iter().map(|r| r.peak_live_bytes).max().unwrap_or(0);
        prop_assert!(
            parent.alloc_bytes >= child_bytes,
            "parent bytes {} < children {}", parent.alloc_bytes, child_bytes
        );
        prop_assert!(
            parent.allocs >= child_allocs,
            "parent allocs {} < children {}", parent.allocs, child_allocs
        );
        // Each child allocated `size` bytes, so collectively at least
        // the sum must be attributed somewhere under the parent.
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        prop_assert!(parent.alloc_bytes >= total);
        prop_assert!(
            parent.peak_live_bytes >= max_child_peak,
            "parent peak {} < child peak {}", parent.peak_live_bytes, max_child_peak
        );
    }
}
