//! Lifetime counters of one [`crate::DeltaEngine`].

/// Totals accumulated across every [`crate::DeltaEngine::apply`] call.
///
/// The first five fields keep the semantics of the retired streaming
/// detector's ingest gauges (`ingest.records`, `ingest.duplicates`,
/// `ingest.intra_syndicate`, `ingest.arcs_added`, `ingest.groups`); the
/// rest are the delta-maintenance counters surfaced by `GET /status`
/// (`delta.batches`, `delta.arcs_patched`, `delta.company_appends`,
/// `delta.sccs_rerun`, `delta.full_rebuilds`, `delta.shards_remined`,
/// `delta.cache_hits`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Trading records received (including duplicates).
    pub records_ingested: u64,
    /// Trading records skipped because the arc was already present.
    pub duplicates: u64,
    /// Trading records that fell inside a contracted company syndicate.
    pub intra_syndicate: u64,
    /// New trading arcs appended to the network.
    pub arcs_added: u64,
    /// Suspicious groups discovered by streaming (cumulative new groups).
    pub groups_found: u64,
    /// Mutation batches applied (all paths).
    pub batches_applied: u64,
    /// Mutations absorbed by a bounded patch (trading appends plus
    /// incremental-path registry changes) without a full rebuild.
    pub arcs_patched: u64,
    /// Batches absorbed by the surgical company-append path (new company
    /// nodes spliced in place, only touched shards re-mined).
    pub company_appends: u64,
    /// Strongly connected components re-run through Tarjan on the
    /// incremental path (distinct representatives over dirty companies).
    pub sccs_rerun: u64,
    /// Batches that fell back to a from-scratch fuse (entity removals or
    /// blast radius exceeded).
    pub full_rebuilds: u64,
    /// SubTPIINs re-mined because their local structure changed.
    pub shards_remined: u64,
    /// SubTPIINs whose groups replayed from the shard cache.
    pub shard_cache_hits: u64,
}

impl DeltaStats {
    /// Publishes the totals as gauges on `registry`.  The engine calls
    /// this with [`tpiin_obs::global`] after every batch.
    pub fn publish_to(&self, registry: &tpiin_obs::MetricsRegistry) {
        let set = |name: &str, value: u64| registry.gauge(name).set(value as f64);
        set("ingest.records", self.records_ingested);
        set("ingest.duplicates", self.duplicates);
        set("ingest.intra_syndicate", self.intra_syndicate);
        set("ingest.arcs_added", self.arcs_added);
        set("ingest.groups", self.groups_found);
        set("delta.batches", self.batches_applied);
        set("delta.arcs_patched", self.arcs_patched);
        set("delta.company_appends", self.company_appends);
        set("delta.sccs_rerun", self.sccs_rerun);
        set("delta.full_rebuilds", self.full_rebuilds);
        set("delta.shards_remined", self.shards_remined);
        set("delta.cache_hits", self.shard_cache_hits);
    }
}
