//! `tpiin-delta` — incremental TPIIN maintenance under streaming ingest.
//!
//! The paper's deployment story is a live feed: "the number of annual
//! tax-related business records is up to 1 billion, the daily peak of
//! these records is up to ten million".  Re-running the full fusion
//! pipeline ([`tpiin_fusion::fuse`]) plus Algorithm 1 for every arriving
//! extract drop is wasteful — most mutations touch a tiny corner of the
//! network.  This crate maintains a fused TPIIN *and* its mined
//! suspicious groups incrementally under typed registry mutations
//! ([`tpiin_model::MutationBatch`]), with a hard correctness bar: after
//! any mutation sequence the maintained network and groups are
//! **bit-identical** to a from-scratch `fuse` + `detect` over the
//! equivalent registry.
//!
//! [`DeltaEngine`] routes each batch down one of three paths:
//!
//! * **Trading append** — batches of `AddTrading` mutations patch arcs
//!   surgically into the frozen network (appended records carry the
//!   highest dedup sequence numbers, so a surgical append is exactly
//!   what the full pipeline would produce);
//! * **Incremental** — antecedent mutations rebuild person syndicates
//!   (`O(P + I)` union–find), re-run Tarjan only over the weak
//!   components touched by investment deltas
//!   ([`tpiin_fusion::incremental::company_scc_reps_delta`]), and
//!   reassemble the network from the patched labels
//!   ([`tpiin_fusion::incremental::assemble_from_labels`]);
//! * **Full rebuild** — the escape hatch for id-renumbering mutations
//!   (entity removals) and for deltas whose blast radius exceeds
//!   [`DeltaConfig::blast_radius`]: a from-scratch `fuse`, timed and
//!   counted so the fallback stays honest.
//!
//! Mining after a patch is shard-cached: subTPIINs are keyed by a
//! 128-bit signature of their *local* structure, and shards untouched by
//! a delta replay their cached groups instead of re-running Algorithm 2
//! (see [`tpiin_core::mine_shard`]).

mod cache;
mod engine;
mod stats;

pub use engine::{ApplyOutcome, DeltaConfig, DeltaEngine, DeltaError, DeltaPath};
pub use stats::DeltaStats;
