//! The delta-fusion engine: typed mutation batches in, a maintained
//! TPIIN plus its mined groups out.

use crate::cache::ShardCache;
use crate::stats::DeltaStats;
use std::collections::{BTreeSet, HashMap, HashSet};
use tpiin_core::{
    segment_one, segment_tpiin, DetectionResult, DetectorConfig, GroupKind, Provenance,
    ShardOutcome, SubTpiinStats, SuspiciousGroup,
};
use tpiin_fusion::compact::{Label, Members};
use tpiin_fusion::incremental::{
    assemble_from_labels, canonical_company_labels, company_scc_reps, company_scc_reps_delta,
    dirty_companies, investment_wcc, person_syndicates,
};
use tpiin_fusion::{fuse, ArcColor, FusionError, IntraSyndicateTrade, Tpiin, TpiinArc, TpiinNode};
use tpiin_graph::NodeId;
use tpiin_model::{
    CompanyId, InfluenceRecord, ModelError, Mutation, MutationBatch, SourceRegistry, TradingRecord,
};

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct DeltaConfig {
    /// Fraction of all companies a single batch may mark dirty before
    /// the incremental path gives up and re-fuses from scratch.  `0.0`
    /// forces the fallback for every antecedent delta (useful for
    /// benchmarking the escape hatch); `1.0` never falls back on size.
    pub blast_radius: f64,
    /// Mining configuration used for shard re-mining.
    pub detector: DetectorConfig,
    /// Maximum memoized shard outcomes; `0` disables the cache.
    pub shard_cache_capacity: usize,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            blast_radius: 0.25,
            detector: DetectorConfig::default(),
            shard_cache_capacity: 1 << 16,
        }
    }
}

/// Which maintenance path absorbed a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaPath {
    /// Surgical trading-arc append into the frozen network.
    TradingAppend,
    /// Surgical company registration: new company nodes and their
    /// legal-person arcs spliced directly into the frozen network (plus
    /// any trading appends riding in the same batch).  No existing node
    /// id moves, so only the touched shards re-mine.
    CompanyAppend,
    /// Bounded re-contraction: syndicate labels patched, only dirty weak
    /// components re-ran Tarjan, network reassembled from labels.
    Incremental,
    /// From-scratch fuse (entity removal or blast radius exceeded).
    FullRebuild,
}

impl DeltaPath {
    /// Stable lowercase name for JSON surfaces.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeltaPath::TradingAppend => "trading_append",
            DeltaPath::CompanyAppend => "company_append",
            DeltaPath::Incremental => "incremental",
            DeltaPath::FullRebuild => "full_rebuild",
        }
    }
}

/// Why a batch was rejected.  A rejected batch leaves the engine
/// exactly as it was — mutations apply to a clone and swap on success.
#[derive(Debug)]
pub enum DeltaError {
    /// A mutation failed to apply (unknown entity, self arc).
    Mutation(ModelError),
    /// The mutated registry failed structural validation, or fusion
    /// found the labels inconsistent.
    Fusion(FusionError),
    /// A registry mutation reached an engine constructed from a bare
    /// TPIIN ([`DeltaEngine::from_tpiin`]); only trading appends are
    /// possible without source records.
    RegistryRequired,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Mutation(e) => write!(f, "mutation failed: {e}"),
            DeltaError::Fusion(e) => write!(f, "re-fusion failed: {e}"),
            DeltaError::RegistryRequired => {
                write!(f, "registry mutations require a registry-backed engine")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ModelError> for DeltaError {
    fn from(e: ModelError) -> Self {
        DeltaError::Mutation(e)
    }
}

impl From<FusionError> for DeltaError {
    fn from(e: FusionError) -> Self {
        DeltaError::Fusion(e)
    }
}

/// Outcome of one applied batch.
#[derive(Debug)]
pub struct ApplyOutcome {
    /// Which maintenance path ran.
    pub path: DeltaPath,
    /// Mutations that changed the registry (no-op removals excluded).
    pub mutations_applied: usize,
    /// Groups present after this batch that did not exist before it
    /// (keyed by node labels, so stable across re-contraction).
    pub new_groups: Vec<SuspiciousGroup>,
    /// Suspicious trading arcs new with this batch, in current node ids.
    pub new_suspicious_arcs: Vec<(NodeId, NodeId)>,
    /// Trading records skipped because the arc was already present.
    pub duplicates: usize,
    /// Trading records that fell inside a company syndicate.
    pub intra_syndicate: usize,
    /// Arcs surgically appended (trading-append path only).
    pub arcs_patched: usize,
    /// SubTPIINs re-mined for this batch.
    pub shards_remined: usize,
    /// SubTPIINs replayed from the shard cache.
    pub cache_hits: usize,
}

impl ApplyOutcome {
    fn empty(path: DeltaPath) -> ApplyOutcome {
        ApplyOutcome {
            path,
            mutations_applied: 0,
            new_groups: Vec::new(),
            new_suspicious_arcs: Vec::new(),
            duplicates: 0,
            intra_syndicate: 0,
            arcs_patched: 0,
            shards_remined: 0,
            cache_hits: 0,
        }
    }
}

/// Stable identity of a group across node-id renumbering: kind plus the
/// label sequences of both trails and the trading arc.  Labels name
/// syndicate memberships, so the key survives re-contraction as long as
/// the group's actual constituents are unchanged.
fn group_label_key(tpiin: &Tpiin, g: &SuspiciousGroup) -> String {
    let mut s = String::with_capacity(64);
    s.push(match g.kind {
        GroupKind::Matched => 'M',
        GroupKind::Circle => 'O',
    });
    for v in [g.trading_arc.0, g.trading_arc.1] {
        s.push('|');
        s.push_str(tpiin.label(v));
    }
    s.push('#');
    for v in &g.trail_with_trade {
        s.push('|');
        s.push_str(tpiin.label(*v));
    }
    s.push('#');
    for v in &g.trail_plain {
        s.push('|');
        s.push_str(tpiin.label(*v));
    }
    s
}

fn arc_label_key(tpiin: &Tpiin, arc: (NodeId, NodeId)) -> (String, String) {
    (
        tpiin.label(arc.0).to_string(),
        tpiin.label(arc.1).to_string(),
    )
}

/// Maintains a fused TPIIN and its detection result under a stream of
/// [`MutationBatch`]es.
///
/// Two construction modes exist:
///
/// * **registry-backed** ([`DeltaEngine::new`] /
///   [`DeltaEngine::from_fused`]) — the engine owns the
///   [`SourceRegistry`] and accepts the full mutation vocabulary, with
///   the bit-identity guarantee against a from-scratch
///   [`tpiin_fusion::fuse`] of the equivalent registry;
/// * **TPIIN-only** ([`DeltaEngine::from_tpiin`]) — for restored
///   snapshots where no registry exists.  Only trading appends are
///   accepted (streamed arcs carry no source sequence); registry
///   mutations are rejected with [`DeltaError::RegistryRequired`].
pub struct DeltaEngine {
    registry: Option<SourceRegistry>,
    tpiin: Tpiin,
    detection: DetectionResult,
    /// Min-member SCC representative per company, carried across batches
    /// so clean weak components skip Tarjan (registry mode only).
    company_reps: Vec<u32>,
    /// Trading arcs currently present, for append dedup.
    seen_arcs: BTreeSet<(NodeId, NodeId)>,
    /// Antecedent weak-component (shard) index per node, maintained
    /// across batches: full re-segmentations rebuild it, surgical
    /// appends extend it (a registered company joins its legal person's
    /// component; trading arcs never change components).
    shard_of: Vec<u32>,
    /// Per-shard overflow flags: whether each shard's last mining run
    /// hit the pattern-tree cap.  `DetectionResult::overflowed` is their
    /// disjunction, so splicing one shard can recompute it.
    shard_overflow: Vec<bool>,
    /// Multiplicity of each group label key in the current detection.
    group_keys: HashMap<String, u32>,
    /// Multiplicity of each arc label key over the suspicious-arc set.
    arc_keys: HashMap<(String, String), u32>,
    cache: ShardCache,
    config: DeltaConfig,
    stats: DeltaStats,
}

/// Decrements a multiplicity map entry, removing it at zero.
fn key_dec<K: std::hash::Hash + Eq>(map: &mut HashMap<K, u32>, key: K) {
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            if *e.get() <= 1 {
                e.remove();
            } else {
                *e.get_mut() -= 1;
            }
        }
        std::collections::hash_map::Entry::Vacant(_) => {
            debug_assert!(false, "key multiplicity underflow");
        }
    }
}

/// The surgical changes a batch made to the network, accumulated while
/// mutations apply and consumed by the detection splice.
#[derive(Default)]
struct SpliceDelta {
    /// Shards whose local structure changed (new nodes, arcs).
    dirty: BTreeSet<usize>,
    /// Intra-syndicate self pairs newly diverted by this batch.
    new_intra: Vec<(NodeId, NodeId)>,
    /// Trading arcs physically appended to the graph.
    arcs_added: usize,
    /// Trading records diverted into the intra-syndicate ledger.
    intra_added: usize,
}

impl DeltaEngine {
    /// Fuses `registry` and starts maintaining it (default config).
    pub fn new(registry: SourceRegistry) -> Result<DeltaEngine, DeltaError> {
        DeltaEngine::with_config(registry, DeltaConfig::default())
    }

    /// Fuses `registry` and starts maintaining it.
    pub fn with_config(
        registry: SourceRegistry,
        config: DeltaConfig,
    ) -> Result<DeltaEngine, DeltaError> {
        let (tpiin, _) = fuse(&registry)?;
        Ok(DeltaEngine::from_fused(registry, tpiin, config))
    }

    /// Wraps an already-fused pair.  `tpiin` must be the fusion of
    /// `registry` (the caller typically just ran the pipeline); the
    /// engine trusts it without re-fusing.
    pub fn from_fused(registry: SourceRegistry, tpiin: Tpiin, config: DeltaConfig) -> DeltaEngine {
        let reps = company_scc_reps(&registry);
        DeltaEngine::assemble(Some(registry), tpiin, reps, config)
    }

    /// Starts maintaining a bare TPIIN (e.g. restored from a snapshot).
    /// Only trading-append batches are accepted in this mode.
    pub fn from_tpiin(tpiin: Tpiin) -> DeltaEngine {
        DeltaEngine::from_tpiin_with(tpiin, DeltaConfig::default())
    }

    /// [`DeltaEngine::from_tpiin`] with an explicit configuration.
    pub fn from_tpiin_with(tpiin: Tpiin, config: DeltaConfig) -> DeltaEngine {
        DeltaEngine::assemble(None, tpiin, Vec::new(), config)
    }

    fn assemble(
        registry: Option<SourceRegistry>,
        tpiin: Tpiin,
        company_reps: Vec<u32>,
        config: DeltaConfig,
    ) -> DeltaEngine {
        let mut engine = DeltaEngine {
            registry,
            tpiin,
            detection: DetectionResult::default(),
            company_reps,
            seen_arcs: BTreeSet::new(),
            shard_of: Vec::new(),
            shard_overflow: Vec::new(),
            group_keys: HashMap::new(),
            arc_keys: HashMap::new(),
            cache: ShardCache::new(config.shard_cache_capacity),
            config,
            stats: DeltaStats::default(),
        };
        engine.reindex_arcs();
        let (detection, _, _) = engine.remine();
        for g in &detection.groups {
            *engine
                .group_keys
                .entry(group_label_key(&engine.tpiin, g))
                .or_insert(0) += 1;
        }
        for &arc in &detection.suspicious_trading_arcs {
            *engine
                .arc_keys
                .entry(arc_label_key(&engine.tpiin, arc))
                .or_insert(0) += 1;
        }
        engine.detection = detection;
        engine
    }

    /// The network in its current state.
    pub fn tpiin(&self) -> &Tpiin {
        &self.tpiin
    }

    /// The detection result over the current network — bit-identical to
    /// [`tpiin_core::detect`] over [`DeltaEngine::tpiin`].
    pub fn detection(&self) -> &DetectionResult {
        &self.detection
    }

    /// The maintained registry, when registry-backed.
    pub fn registry(&self) -> Option<&SourceRegistry> {
        self.registry.as_ref()
    }

    /// Lifetime counters across all batches.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Suspicious trading arcs of the current detection.
    pub fn suspicious_arcs(&self) -> &BTreeSet<(NodeId, NodeId)> {
        &self.detection.suspicious_trading_arcs
    }

    /// Cumulative groups discovered by streaming (not counting those
    /// present at construction).
    pub fn groups_found(&self) -> usize {
        self.stats.groups_found as usize
    }

    /// Memoized shard count (for status surfaces).
    pub fn cached_shards(&self) -> usize {
        self.cache.len()
    }

    /// Label helper for reporting.
    pub fn label(&self, node: NodeId) -> &str {
        self.tpiin.label(node)
    }

    /// Legacy convenience: appends trading records as one batch.
    pub fn ingest(&mut self, records: &[TradingRecord]) -> Result<ApplyOutcome, DeltaError> {
        self.apply(&MutationBatch::trading(records.iter().copied()))
    }

    /// Applies one mutation batch atomically.  On `Err` the engine is
    /// unchanged; on `Ok` the maintained network and detection equal a
    /// from-scratch fuse + detect of the mutated registry.
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<ApplyOutcome, DeltaError> {
        let _span = tpiin_obs::Span::at("delta/apply");
        let outcome = if self.registry.is_none() {
            if !batch.is_trading_only() {
                return Err(DeltaError::RegistryRequired);
            }
            self.apply_trading(batch, false)?
        } else if batch.is_trading_only() {
            self.apply_trading(batch, true)?
        } else if batch.renumbers_ids() {
            self.apply_full(batch)?
        } else if batch.is_company_append() {
            self.apply_company_append(batch)?
        } else {
            self.apply_incremental(batch)?
        };
        self.stats.batches_applied += 1;
        self.stats.publish_to(tpiin_obs::global());
        Ok(outcome)
    }

    /// Trading-append fast path.  Appended records take the highest
    /// source sequence numbers, so first-wins dedup in a from-scratch
    /// fuse keeps exactly the pre-existing arcs plus the non-duplicate
    /// appends — which is what the surgical patch produces.
    fn apply_trading(
        &mut self,
        batch: &MutationBatch,
        registry_mode: bool,
    ) -> Result<ApplyOutcome, DeltaError> {
        let records: Vec<TradingRecord> = batch
            .mutations
            .iter()
            .map(|m| match m {
                Mutation::AddTrading(r) => *r,
                _ => unreachable!("caller checked is_trading_only"),
            })
            .collect();
        // Validate the whole batch before touching anything (atomicity).
        let nc = self.tpiin.company_node.len() as u32;
        for r in &records {
            for c in [r.seller, r.buyer] {
                if c.0 >= nc {
                    return Err(DeltaError::Mutation(ModelError::UnknownCompany(c)));
                }
            }
            if registry_mode && r.seller == r.buyer {
                // The registry rejects self arcs; the TPIIN-only mode
                // keeps the retired streaming detector's behavior and
                // treats them as (trivially) intra-syndicate.
                return Err(DeltaError::Mutation(ModelError::SelfCompanyArc(r.seller)));
            }
        }
        let mut outcome = ApplyOutcome::empty(DeltaPath::TradingAppend);
        let mut delta = SpliceDelta::default();
        for r in &records {
            let seq = if registry_mode {
                let registry = self.registry.as_mut().expect("registry mode");
                let seq = registry.tradings().len() as u32;
                registry.add_trading(*r);
                seq
            } else {
                // Streamed arcs with no source registry have no sequence.
                u32::MAX
            };
            self.patch_trading_arc(r, seq, &mut delta, &mut outcome);
        }
        outcome.mutations_applied = records.len();
        self.tpiin.refreeze();
        self.splice_detection(&delta, &mut outcome);
        Ok(outcome)
    }

    /// Appends one trading record to the network (the registry side, if
    /// any, is already updated): intra-syndicate records are diverted,
    /// duplicates dropped, and a surviving arc marks its shard dirty —
    /// unless its endpoints sit in different antecedent components, in
    /// which case no shard owns it and nothing needs re-mining.
    fn patch_trading_arc(
        &mut self,
        r: &TradingRecord,
        seq: u32,
        delta: &mut SpliceDelta,
        outcome: &mut ApplyOutcome,
    ) {
        self.stats.records_ingested += 1;
        let seller = self.tpiin.company_node[r.seller.index()];
        let buyer = self.tpiin.company_node[r.buyer.index()];
        if seller == buyer {
            outcome.intra_syndicate += 1;
            self.stats.intra_syndicate += 1;
            self.tpiin.intra_syndicate_trades.push(IntraSyndicateTrade {
                seller: r.seller,
                buyer: r.buyer,
                syndicate: seller,
                volume: r.volume,
            });
            delta.intra_added += 1;
            delta.new_intra.push((seller, buyer));
            return;
        }
        if !self.seen_arcs.insert((seller, buyer)) {
            outcome.duplicates += 1;
            self.stats.duplicates += 1;
            return;
        }
        self.tpiin.graph.add_edge(
            seller,
            buyer,
            TpiinArc {
                color: ArcColor::Trading,
                weight: r.volume,
            },
        );
        self.tpiin.arc_sources.push(seq);
        self.tpiin.trading_arc_count += 1;
        self.stats.arcs_added += 1;
        self.stats.arcs_patched += 1;
        outcome.arcs_patched += 1;
        delta.arcs_added += 1;
        let (s, b) = (self.shard_of[seller.index()], self.shard_of[buyer.index()]);
        if s == b {
            delta.dirty.insert(s as usize);
        }
    }

    /// Surgical path for batches that only register companies and append
    /// trading records.  This class never renumbers an existing node: the
    /// fused network lays out person-syndicate nodes before company
    /// nodes, and a freshly registered company is a singleton investment
    /// SCC with the highest company id, so a from-scratch rebuild would
    /// append its node at the very end of the node list — exactly what
    /// `add_node` does.  Its legal-person arc is spliced into the
    /// influence partition at the position the from-scratch sequence
    /// ordering dictates, the company joins its legal person's antecedent
    /// component, and only the touched shards re-mine.
    fn apply_company_append(&mut self, batch: &MutationBatch) -> Result<ApplyOutcome, DeltaError> {
        // Validate the whole batch up front (atomicity without cloning
        // the registry), mirroring `Mutation::apply`: legal persons must
        // exist, trading endpoints may reference companies registered
        // earlier in the same batch, self arcs are rejected.
        let registry = self.registry.as_ref().expect("registry mode");
        let np = registry.person_count() as u32;
        let mut vc = registry.company_count() as u32;
        for m in &batch.mutations {
            match m {
                Mutation::AddCompany { legal_person, .. } => {
                    if legal_person.0 >= np {
                        return Err(DeltaError::Mutation(ModelError::UnknownPerson(
                            *legal_person,
                        )));
                    }
                    vc += 1;
                }
                Mutation::AddTrading(r) => {
                    for c in [r.seller, r.buyer] {
                        if c.0 >= vc {
                            return Err(DeltaError::Mutation(ModelError::UnknownCompany(c)));
                        }
                    }
                    if r.seller == r.buyer {
                        return Err(DeltaError::Mutation(ModelError::SelfCompanyArc(r.seller)));
                    }
                }
                _ => unreachable!("caller checked is_company_append"),
            }
        }

        let mut outcome = ApplyOutcome::empty(DeltaPath::CompanyAppend);
        let mut delta = SpliceDelta::default();
        for m in &batch.mutations {
            match m {
                Mutation::AddCompany {
                    name,
                    legal_person,
                    kind,
                } => {
                    let registry = self.registry.as_mut().expect("registry mode");
                    let company = registry.add_company(name.clone());
                    let seq = registry.influences().len() as u32;
                    registry.add_influence(InfluenceRecord {
                        person: *legal_person,
                        company,
                        kind: *kind,
                        is_legal_person: true,
                    });
                    let syndicate = self.tpiin.person_node[legal_person.index()];
                    let node = self.tpiin.graph.add_node(TpiinNode::Company {
                        label: Label::new(name),
                        members: Members::from_slice(&[company]),
                    });
                    self.tpiin.company_node.push(node);
                    // A company with no investments is its own SCC rep.
                    self.company_reps.push(company.0);
                    let shard = self.shard_of[syndicate.index()];
                    self.shard_of.push(shard);
                    delta.dirty.insert(shard as usize);
                    // The influence partition is ordered by source
                    // sequence (influence records, then investments
                    // offset past them).  The new record takes the next
                    // record sequence, so it splices in at the seq
                    // partition point and every investment-sourced arc
                    // behind it shifts up by one — exactly what a
                    // from-scratch fuse of the appended registry yields.
                    let influence_range =
                        &mut self.tpiin.arc_sources[..self.tpiin.influence_arc_count];
                    let pos = influence_range.partition_point(|&s| s < seq);
                    for s in influence_range[pos..].iter_mut() {
                        *s += 1;
                    }
                    self.tpiin.arc_sources.insert(pos, seq);
                    // Stored provenances snapshot those sequences; patch
                    // the investment-sourced ones (>= the new record's
                    // seq) in every kept shard so they keep matching a
                    // from-scratch assembly.  Trading source records
                    // index the trading feed and are unaffected.
                    for p in &mut self.detection.provenances {
                        for arc in &mut p.influence_arcs {
                            if let Some(rec) = &mut arc.source_record {
                                if *rec >= seq {
                                    *rec += 1;
                                }
                            }
                        }
                    }
                    self.tpiin.graph.splice_edge(
                        pos,
                        syndicate,
                        node,
                        TpiinArc {
                            color: ArcColor::Influence,
                            weight: 1.0,
                        },
                    );
                    self.tpiin.influence_arc_count += 1;
                    self.stats.arcs_patched += 1;
                    outcome.arcs_patched += 1;
                }
                Mutation::AddTrading(r) => {
                    let registry = self.registry.as_mut().expect("registry mode");
                    let seq = registry.tradings().len() as u32;
                    registry.add_trading(*r);
                    self.patch_trading_arc(r, seq, &mut delta, &mut outcome);
                }
                _ => unreachable!("validated above"),
            }
        }
        outcome.mutations_applied = batch.mutations.len();
        self.stats.company_appends += 1;
        self.tpiin.refreeze();
        self.splice_detection(&delta, &mut outcome);
        Ok(outcome)
    }

    /// Incremental path for antecedent mutations that keep entity ids:
    /// patch syndicate labels, re-Tarjan only dirty weak components,
    /// reassemble the network from labels.
    fn apply_incremental(&mut self, batch: &MutationBatch) -> Result<ApplyOutcome, DeltaError> {
        let mut next = self.registry.clone().expect("registry mode");
        let applied = batch.apply_to_registry(&mut next)?;
        next.validate()
            .map_err(|errs| DeltaError::Fusion(FusionError::InvalidRegistry(errs)))?;

        let endpoints: Vec<CompanyId> = batch
            .mutations
            .iter()
            .flat_map(|m| match m {
                Mutation::AddInvestment(r) => vec![r.investor, r.investee],
                Mutation::RemoveInvestment { investor, investee } => vec![*investor, *investee],
                _ => Vec::new(),
            })
            .collect();
        let (wcc, n_wcc) = investment_wcc(&next);
        let dirty = dirty_companies(&wcc, n_wcc, endpoints);
        let nc = next.company_count();
        if nc > 0 && dirty.len() as f64 > self.config.blast_radius * nc as f64 {
            return self.rebuild_from(next, applied);
        }
        let reps = company_scc_reps_delta(&next, &self.company_reps, &dirty);
        let rerun: HashSet<u32> = dirty.iter().map(|&c| reps[c as usize]).collect();
        self.stats.sccs_rerun += rerun.len() as u64;
        let (person_labels, person_nodes) = person_syndicates(&next);
        let (company_labels, company_nodes) = canonical_company_labels(&reps);
        let (tpiin, _) = assemble_from_labels(
            &next,
            &person_labels,
            person_nodes,
            &company_labels,
            company_nodes,
        )?;
        self.install(next, tpiin, reps);
        self.stats.arcs_patched += applied as u64;
        let mut outcome = ApplyOutcome::empty(DeltaPath::Incremental);
        outcome.mutations_applied = applied;
        self.refresh_detection(&mut outcome);
        Ok(outcome)
    }

    /// Full-rebuild escape hatch for id-renumbering batches.
    fn apply_full(&mut self, batch: &MutationBatch) -> Result<ApplyOutcome, DeltaError> {
        let mut next = self.registry.clone().expect("registry mode");
        let applied = batch.apply_to_registry(&mut next)?;
        self.rebuild_from(next, applied)
    }

    /// From-scratch fuse over `next`; the shard cache is flushed so the
    /// rebuild's mining cost is honest.
    fn rebuild_from(
        &mut self,
        next: SourceRegistry,
        applied: usize,
    ) -> Result<ApplyOutcome, DeltaError> {
        let _span = tpiin_obs::Span::at("delta/refuse");
        let (tpiin, _) = fuse(&next)?;
        let reps = company_scc_reps(&next);
        self.cache.clear();
        self.install(next, tpiin, reps);
        self.stats.full_rebuilds += 1;
        let mut outcome = ApplyOutcome::empty(DeltaPath::FullRebuild);
        outcome.mutations_applied = applied;
        self.refresh_detection(&mut outcome);
        Ok(outcome)
    }

    fn install(&mut self, registry: SourceRegistry, tpiin: Tpiin, reps: Vec<u32>) {
        self.registry = Some(registry);
        self.tpiin = tpiin;
        self.company_reps = reps;
        self.reindex_arcs();
    }

    fn reindex_arcs(&mut self) {
        self.seen_arcs = self
            .tpiin
            .graph
            .edges()
            .filter(|e| e.weight.color == ArcColor::Trading)
            .map(|e| (e.source, e.target))
            .collect();
    }

    /// Splices a batch's surgical changes into the maintained detection:
    /// only the dirty shards re-segment and re-mine, and their group and
    /// provenance slices are replaced in place.  Untouched shards cost
    /// nothing — no signature hashing, no result copying — which is what
    /// makes a small batch O(changed shards) instead of O(network).
    ///
    /// The result is bit-identical to a full re-mine: shard membership
    /// only grows along monotone paths (appends never merge or split
    /// antecedent components, because trading arcs don't participate in
    /// segmentation and a registered company joins its legal person's
    /// component), so shard indices, group order, and per-shard stats
    /// all keep the layout `remine` would produce.
    fn splice_detection(&mut self, delta: &SpliceDelta, outcome: &mut ApplyOutcome) {
        let _span = tpiin_obs::Span::at("delta/splice");
        self.detection.total_trading_arcs += delta.arcs_added + delta.intra_added;
        self.detection.intra_syndicate_trades += delta.intra_added;

        // Key-map updates are deferred: newness is judged against the
        // maps as they stood before this batch (matching the full
        // refresh, which diffs the new detection against the old maps).
        let mut group_removed: Vec<String> = Vec::new();
        let mut group_added: Vec<String> = Vec::new();
        let mut arc_removed: Vec<(String, String)> = Vec::new();
        let mut arc_added: Vec<(String, String)> = Vec::new();

        for &(s, b) in &delta.new_intra {
            if self.detection.suspicious_trading_arcs.insert((s, b)) {
                let key = arc_label_key(&self.tpiin, (s, b));
                if !self.arc_keys.contains_key(&key) {
                    outcome.new_suspicious_arcs.push((s, b));
                }
                arc_added.push(key);
            }
        }

        for &idx in &delta.dirty {
            // Rebuild the shard from the maintained membership map; the
            // scan keeps ascending node-id order, which is the member
            // order global segmentation emits.
            let members: Vec<NodeId> = self
                .shard_of
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s as usize == idx)
                .map(|(v, _)| NodeId::from_index(v))
                .collect();
            let sub = segment_one(&self.tpiin, idx, members);

            // This shard's slice of the group list, via per-shard counts.
            let start: usize = self.detection.per_subtpiin[..idx]
                .iter()
                .map(|s| s.groups)
                .sum();
            let old_len = self.detection.per_subtpiin[idx].groups;
            for i in start..start + old_len {
                let (key, arc, complex) = {
                    let g = &self.detection.groups[i];
                    (
                        group_label_key(&self.tpiin, g),
                        g.trading_arc,
                        g.kind == GroupKind::Matched && !g.simple,
                    )
                };
                group_removed.push(key);
                if complex {
                    self.detection.complex_group_count -= 1;
                } else {
                    self.detection.simple_group_count -= 1;
                }
                // Group trading arcs have distinct endpoints, so this
                // never evicts an intra-syndicate self pair.
                if self.detection.suspicious_trading_arcs.remove(&arc) {
                    arc_removed.push(arc_label_key(&self.tpiin, arc));
                }
            }

            let out = if sub.trading_arc_count == 0 {
                ShardOutcome::default()
            } else {
                let (out, hit) = self.cache.lookup(&sub, &self.config.detector);
                if hit {
                    outcome.cache_hits += 1;
                    self.stats.shard_cache_hits += 1;
                } else {
                    outcome.shards_remined += 1;
                    self.stats.shards_remined += 1;
                }
                out
            };
            let stats_entry = &mut self.detection.per_subtpiin[idx];
            stats_entry.nodes = sub.node_count();
            stats_entry.influence_arcs = sub.influence_arc_count();
            stats_entry.trading_arcs = sub.trading_arc_count;
            stats_entry.tree_nodes = out.tree_nodes;
            stats_entry.patterns = out.patterns;
            stats_entry.groups = out.groups.len();
            self.shard_overflow[idx] = out.overflowed;

            let mut spliced = Vec::with_capacity(out.groups.len());
            for mut g in out.groups {
                let map = |v: NodeId| sub.global[v.index()];
                g.subtpiin = idx;
                g.antecedent = map(g.antecedent);
                g.end = map(g.end);
                g.trading_arc = (map(g.trading_arc.0), map(g.trading_arc.1));
                for v in g
                    .trail_with_trade
                    .iter_mut()
                    .chain(g.trail_plain.iter_mut())
                {
                    *v = map(*v);
                }
                if g.kind == GroupKind::Matched && !g.simple {
                    self.detection.complex_group_count += 1;
                } else {
                    self.detection.simple_group_count += 1;
                }
                if self.detection.suspicious_trading_arcs.insert(g.trading_arc) {
                    let key = arc_label_key(&self.tpiin, g.trading_arc);
                    if !self.arc_keys.contains_key(&key) {
                        outcome.new_suspicious_arcs.push(g.trading_arc);
                    }
                    arc_added.push(key);
                }
                let gkey = group_label_key(&self.tpiin, &g);
                if !self.group_keys.contains_key(&gkey) {
                    outcome.new_groups.push(g.clone());
                }
                group_added.push(gkey);
                spliced.push(g);
            }
            // Provenance only assembles for the re-mined shard's groups;
            // every other shard's records move (not clone) in place.
            let provs: Vec<Provenance> = spliced
                .iter()
                .map(|g| Provenance::assemble(&self.tpiin, g))
                .collect();
            self.detection
                .provenances
                .splice(start..start + old_len, provs);
            self.detection
                .groups
                .splice(start..start + old_len, spliced);
        }
        self.detection.overflowed = self.shard_overflow.iter().any(|&o| o);
        // The full refresh reports new arcs in suspicious-set order.
        outcome.new_suspicious_arcs.sort_unstable();
        self.stats.groups_found += outcome.new_groups.len() as u64;
        for key in group_removed {
            key_dec(&mut self.group_keys, key);
        }
        for key in group_added {
            *self.group_keys.entry(key).or_insert(0) += 1;
        }
        for key in arc_removed {
            key_dec(&mut self.arc_keys, key);
        }
        for key in arc_added {
            *self.arc_keys.entry(key).or_insert(0) += 1;
        }
    }

    /// Re-mines the current network through the shard cache and swaps
    /// the detection in, diffing groups and arcs by label key.
    fn refresh_detection(&mut self, outcome: &mut ApplyOutcome) {
        let (detection, remined, hits) = self.remine();
        outcome.shards_remined = remined;
        outcome.cache_hits = hits;
        self.stats.shards_remined += remined as u64;
        self.stats.shard_cache_hits += hits as u64;

        let mut next_group_keys: HashMap<String, u32> =
            HashMap::with_capacity(detection.groups.len());
        for g in &detection.groups {
            let key = group_label_key(&self.tpiin, g);
            if !self.group_keys.contains_key(&key) {
                outcome.new_groups.push(g.clone());
            }
            *next_group_keys.entry(key).or_insert(0) += 1;
        }
        let mut next_arc_keys: HashMap<(String, String), u32> =
            HashMap::with_capacity(detection.suspicious_trading_arcs.len());
        for &arc in &detection.suspicious_trading_arcs {
            let key = arc_label_key(&self.tpiin, arc);
            if !self.arc_keys.contains_key(&key) {
                outcome.new_suspicious_arcs.push(arc);
            }
            *next_arc_keys.entry(key).or_insert(0) += 1;
        }
        self.stats.groups_found += outcome.new_groups.len() as u64;
        self.group_keys = next_group_keys;
        self.arc_keys = next_arc_keys;
        self.detection = detection;
    }

    /// Rebuilds the full [`DetectionResult`] by concatenating per-shard
    /// outcomes, replaying cached shards.  Replicates the global
    /// detector's merge exactly (the shard-concatenation invariant is
    /// property-tested in `tpiin-core`), so the result is bit-identical
    /// to [`tpiin_core::detect`] over the current network.
    fn remine(&mut self) -> (DetectionResult, usize, usize) {
        let tpiin = &self.tpiin;
        let subs = segment_tpiin(tpiin);
        // Refresh the shard membership map the splice paths extend.
        self.shard_of = vec![u32::MAX; tpiin.node_count()];
        for sub in &subs {
            for &g in &sub.global {
                self.shard_of[g.index()] = sub.index as u32;
            }
        }
        self.shard_overflow = vec![false; subs.len()];
        let mut result = DetectionResult {
            total_trading_arcs: tpiin.trading_arc_count + tpiin.intra_syndicate_trades.len(),
            intra_syndicate_trades: tpiin.intra_syndicate_trades.len(),
            per_subtpiin: subs
                .iter()
                .map(|s| SubTpiinStats {
                    index: s.index,
                    nodes: s.node_count(),
                    influence_arcs: s.influence_arc_count(),
                    trading_arcs: s.trading_arc_count,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        };
        for t in &tpiin.intra_syndicate_trades {
            result.suspicious_trading_arcs.insert((
                tpiin.company_node[t.seller.index()],
                tpiin.company_node[t.buyer.index()],
            ));
        }
        let (mut remined, mut hits) = (0usize, 0usize);
        for sub in &subs {
            if sub.trading_arc_count == 0 {
                continue;
            }
            let (out, hit) = self.cache.lookup(sub, &self.config.detector);
            if hit {
                hits += 1;
            } else {
                remined += 1;
            }
            let stats = &mut result.per_subtpiin[sub.index];
            stats.tree_nodes = out.tree_nodes;
            stats.patterns = out.patterns;
            stats.groups = out.groups.len();
            self.shard_overflow[sub.index] = out.overflowed;
            result.overflowed |= out.overflowed;
            for mut g in out.groups {
                let map = |v: NodeId| sub.global[v.index()];
                g.subtpiin = sub.index;
                g.antecedent = map(g.antecedent);
                g.end = map(g.end);
                g.trading_arc = (map(g.trading_arc.0), map(g.trading_arc.1));
                for v in g
                    .trail_with_trade
                    .iter_mut()
                    .chain(g.trail_plain.iter_mut())
                {
                    *v = map(*v);
                }
                if g.kind == GroupKind::Matched && !g.simple {
                    result.complex_group_count += 1;
                } else {
                    result.simple_group_count += 1;
                }
                result.suspicious_trading_arcs.insert(g.trading_arc);
                result.groups.push(g);
            }
        }
        result.provenances = result
            .groups
            .iter()
            .map(|g| Provenance::assemble(tpiin, g))
            .collect();
        (result, remined, hits)
    }
}
