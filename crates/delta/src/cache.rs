//! Shard-outcome cache keyed by local subTPIIN structure.
//!
//! [`tpiin_core::mine_shard`] is a pure function of a shard's *local*
//! topology — node colors, influence adjacency, trading adjacency — so
//! its outcome can be replayed whenever the same local structure
//! reappears, even after global node ids shifted under a re-contraction.
//! The key is a 128-bit signature (two independently seeded 64-bit
//! hashes over the packed adjacency), making accidental collisions
//! negligible; the differential test suite would surface a systematic
//! one immediately.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use tpiin_core::{mine_shard, DetectorConfig, ShardOutcome, SubTpiin};

/// Signature of a shard's local structure, independent of global node
/// ids and of the shard's position in the segmentation.
pub(crate) fn shard_signature(sub: &SubTpiin) -> (u64, u64) {
    let mut a = DefaultHasher::new();
    let mut b = DefaultHasher::new();
    0x9e37_79b9_7f4a_7c15u64.hash(&mut a);
    0xc2b2_ae3d_27d4_eb4fu64.hash(&mut b);
    let n = sub.node_count() as u32;
    for h in [&mut a, &mut b] {
        n.hash(h);
        for v in 0..n {
            sub.is_person[v as usize].hash(h);
            sub.influence(v).hash(h);
            sub.trading(v).hash(h);
        }
    }
    (a.finish(), b.finish())
}

/// Bounded map from shard signature to mined outcome (local
/// coordinates).  On overflow the whole map is cleared — a rare, cheap
/// reset that keeps the memory bound hard without an eviction list.
pub(crate) struct ShardCache {
    map: HashMap<(u64, u64), ShardOutcome>,
    capacity: usize,
}

impl ShardCache {
    pub(crate) fn new(capacity: usize) -> ShardCache {
        ShardCache {
            map: HashMap::new(),
            capacity,
        }
    }

    /// Returns the shard's outcome (local coordinates) and whether it
    /// came from the cache.  Misses mine the shard and memoize it.
    pub(crate) fn lookup(
        &mut self,
        sub: &SubTpiin,
        config: &DetectorConfig,
    ) -> (ShardOutcome, bool) {
        if self.capacity == 0 {
            return (mine_shard(sub, config), false);
        }
        let key = shard_signature(sub);
        if let Some(out) = self.map.get(&key) {
            return (out.clone(), true);
        }
        let out = mine_shard(sub, config);
        if self.map.len() >= self.capacity {
            self.map.clear();
        }
        self.map.insert(key, out.clone());
        (out, false)
    }

    /// Drops every memoized outcome (full-rebuild fallback).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of memoized shards.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}
