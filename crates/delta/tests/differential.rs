//! The delta engine's correctness bar, property-tested: after **every**
//! batch of a random mutation sequence, the incrementally maintained
//! TPIIN, groups and provenance are bit-identical to a from-scratch
//! [`tpiin_fusion::fuse`] + [`tpiin_core::detect`] over a shadow
//! registry replaying the same mutations.  Rejected batches must leave
//! the engine untouched.

use proptest::prelude::*;
use tpiin_core::detect;
use tpiin_delta::DeltaEngine;
use tpiin_fusion::{fuse, Tpiin};
use tpiin_model::{
    CompanyId, InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Mutation,
    MutationBatch, PersonId, Role, RoleSet, SourceRegistry, TradingRecord,
};

/// A randomly generated but always-valid base registry (same shape as
/// tpiin-core's differential suite, scaled down because every batch
/// boundary pays a full fuse + detect).
#[derive(Debug, Clone)]
struct RawRegistry {
    np: usize,
    nc: usize,
    lp_of: Vec<usize>,
    directorships: Vec<(usize, usize)>,
    kinship: Vec<(usize, usize)>,
    investments: Vec<(usize, usize)>,
    trades: Vec<(usize, usize)>,
}

fn arb_registry() -> impl Strategy<Value = RawRegistry> {
    (2usize..5, 2usize..8).prop_flat_map(|(np, nc)| {
        (
            proptest::collection::vec(0..np, nc),
            proptest::collection::vec((0..np, 0..nc), 0..6),
            proptest::collection::vec((0..np, 0..np), 0..3),
            proptest::collection::vec((0..nc, 0..nc), 0..8),
            proptest::collection::vec((0..nc, 0..nc), 0..8),
        )
            .prop_map(
                move |(lp_of, directorships, kinship, investments, trades)| RawRegistry {
                    np,
                    nc,
                    lp_of,
                    directorships,
                    kinship,
                    investments,
                    trades,
                },
            )
    })
}

fn build(raw: &RawRegistry) -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let persons: Vec<_> = (0..raw.np)
        .map(|i| r.add_person(format!("P{i}"), RoleSet::of(&[Role::Ceo, Role::Director])))
        .collect();
    let companies: Vec<_> = (0..raw.nc)
        .map(|i| r.add_company(format!("C{i}")))
        .collect();
    for (c, &p) in raw.lp_of.iter().enumerate() {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    for &(p, c) in &raw.directorships {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
    }
    for &(a, b) in &raw.kinship {
        if a != b {
            r.add_interdependence(persons[a], persons[b], InterdependenceKind::Kinship);
        }
    }
    for &(a, b) in &raw.investments {
        if a != b {
            r.add_investment(InvestmentRecord {
                investor: companies[a],
                investee: companies[b],
                share: 0.5,
            });
        }
    }
    for &(a, b) in &raw.trades {
        if a != b {
            r.add_trading(TradingRecord {
                seller: companies[a],
                buyer: companies[b],
                volume: 1.0,
            });
        }
    }
    r
}

/// Abstract mutation: raw indices are interpreted against the registry
/// state at batch start, so a spec stays meaningful while earlier
/// batches grow and shrink the entity space.
#[derive(Debug, Clone)]
enum Spec {
    AddPerson,
    AddCompany(usize),
    AddInterdependence(usize, usize),
    AddInfluence(usize, usize),
    RemoveInfluence(usize, usize),
    AddInvestment(usize, usize),
    RemoveInvestment(usize, usize),
    AddTrading(usize, usize),
    RemoveTrading(usize, usize),
    SetTaxRate(usize),
    RemoveCompany(usize),
    RemovePerson(usize),
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    // The vendored prop_oneof! has no weight syntax; repeated entries
    // bias the draw towards the structurally interesting mutations.
    let idx = 0..32usize;
    prop_oneof![
        Just(Spec::AddPerson),
        idx.clone().prop_map(Spec::AddCompany),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::AddInterdependence(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::AddInfluence(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::RemoveInfluence(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::AddInvestment(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::AddInvestment(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::RemoveInvestment(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::AddTrading(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::AddTrading(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Spec::RemoveTrading(a, b)),
        idx.clone().prop_map(Spec::SetTaxRate),
        idx.clone().prop_map(Spec::RemoveCompany),
        idx.prop_map(Spec::RemovePerson),
    ]
}

/// Interprets a spec against the current registry; `None` when the
/// entity space is too small to name distinct endpoints.
fn realize(spec: &Spec, r: &SourceRegistry) -> Option<Mutation> {
    let np = r.person_count();
    let nc = r.company_count();
    let person = |i: usize| PersonId((i % np) as u32);
    let company = |i: usize| CompanyId((i % nc) as u32);
    let distinct = |i: usize, j: usize, n: usize| {
        let a = i % n;
        let mut b = j % n;
        if a == b {
            b = (b + 1) % n;
        }
        (a as u32, b as u32)
    };
    Some(match spec {
        Spec::AddPerson => Mutation::AddPerson {
            name: format!("P{np}"),
            roles: RoleSet::of(&[Role::Ceo, Role::Director]),
        },
        Spec::AddCompany(lp) if np > 0 => Mutation::AddCompany {
            name: format!("C{nc}"),
            legal_person: person(*lp),
            kind: InfluenceKind::CeoOf,
        },
        Spec::AddInterdependence(a, b) if np > 1 => {
            let (a, b) = distinct(*a, *b, np);
            Mutation::AddInterdependence {
                a: PersonId(a),
                b: PersonId(b),
                kind: InterdependenceKind::Interlocking,
            }
        }
        Spec::AddInfluence(p, c) if np > 0 && nc > 0 => Mutation::AddInfluence(InfluenceRecord {
            person: person(*p),
            company: company(*c),
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        }),
        // May remove a legal-person arc: the batch must then be rejected
        // wholesale, which is exactly what we want to exercise.
        Spec::RemoveInfluence(p, c) if np > 0 && nc > 0 => Mutation::RemoveInfluence {
            person: person(*p),
            company: company(*c),
        },
        Spec::AddInvestment(a, b) if nc > 1 => {
            let (a, b) = distinct(*a, *b, nc);
            Mutation::AddInvestment(InvestmentRecord {
                investor: CompanyId(a),
                investee: CompanyId(b),
                share: 0.5,
            })
        }
        Spec::RemoveInvestment(a, b) if nc > 0 => Mutation::RemoveInvestment {
            investor: company(*a),
            investee: company(*b),
        },
        Spec::AddTrading(a, b) if nc > 1 => {
            let (a, b) = distinct(*a, *b, nc);
            Mutation::AddTrading(TradingRecord {
                seller: CompanyId(a),
                buyer: CompanyId(b),
                volume: 2.0,
            })
        }
        Spec::RemoveTrading(a, b) if nc > 0 => Mutation::RemoveTrading {
            seller: company(*a),
            buyer: company(*b),
        },
        Spec::SetTaxRate(c) if nc > 0 => Mutation::SetTaxRate {
            company: company(*c),
            rate: 0.17,
        },
        Spec::RemoveCompany(c) if nc > 0 => Mutation::RemoveCompany {
            company: company(*c),
        },
        Spec::RemovePerson(p) if np > 0 => Mutation::RemovePerson { person: person(*p) },
        _ => return None,
    })
}

fn assert_identical(a: &Tpiin, b: &Tpiin) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.edge_list(), b.edge_list());
    prop_assert_eq!(&a.person_node, &b.person_node);
    prop_assert_eq!(&a.company_node, &b.company_node);
    prop_assert_eq!(&a.arc_sources, &b.arc_sources);
    prop_assert_eq!(&a.intra_syndicate_trades, &b.intra_syndicate_trades);
    prop_assert_eq!(a.influence_arc_count, b.influence_arc_count);
    prop_assert_eq!(a.trading_arc_count, b.trading_arc_count);
    let la: Vec<&str> = a.graph.nodes().map(|(_, n)| n.label()).collect();
    let lb: Vec<&str> = b.graph.nodes().map(|(_, n)| n.label()).collect();
    prop_assert_eq!(la, lb);
    Ok(())
}

/// Cases default to 48 (CI-friendly); `DELTA_DIFF_CASES` cranks the
/// count up for deeper soak runs against the splice paths.
fn case_count() -> u32 {
    std::env::var("DELTA_DIFF_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(case_count()))]

    #[test]
    fn delta_engine_matches_full_refuse_at_every_step(
        raw in arb_registry(),
        script in proptest::collection::vec(proptest::collection::vec(arb_spec(), 1..4), 1..6),
    ) {
        let mut shadow = build(&raw);
        let mut engine = DeltaEngine::new(shadow.clone()).expect("valid base registry");
        for specs in &script {
            let mutations: Vec<Mutation> =
                specs.iter().filter_map(|s| realize(s, &shadow)).collect();
            if mutations.is_empty() {
                continue;
            }
            let batch = MutationBatch::new(mutations);
            if engine.apply(&batch).is_ok() {
                let mut next = shadow.clone();
                batch
                    .apply_to_registry(&mut next)
                    .expect("engine accepted the batch");
                prop_assert!(next.validate().is_ok(), "engine accepted an invalid registry");
                shadow = next;
            }
            // Accepted or rejected, the engine must now equal a
            // from-scratch pipeline over the shadow registry.
            let (expected_tpiin, _) = fuse(&shadow).expect("shadow fuses");
            let expected = detect(&expected_tpiin);
            assert_identical(engine.tpiin(), &expected_tpiin)?;
            let got = engine.detection();
            prop_assert_eq!(&got.groups, &expected.groups);
            prop_assert_eq!(&got.provenances, &expected.provenances);
            prop_assert_eq!(&got.suspicious_trading_arcs, &expected.suspicious_trading_arcs);
            prop_assert_eq!(got.complex_group_count, expected.complex_group_count);
            prop_assert_eq!(got.simple_group_count, expected.simple_group_count);
            prop_assert_eq!(got.total_trading_arcs, expected.total_trading_arcs);
            prop_assert_eq!(got.intra_syndicate_trades, expected.intra_syndicate_trades);
            prop_assert_eq!(&got.per_subtpiin, &expected.per_subtpiin);
            prop_assert_eq!(got.overflowed, expected.overflowed);
        }
    }
}
