//! Streaming-ingest behavior of the delta engine: the retired
//! `IncrementalDetector` contract (trading appends over a fused TPIIN)
//! re-expressed against [`DeltaEngine`], plus the registry-backed paths.

use tpiin_core::detect;
use tpiin_datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin_delta::{DeltaConfig, DeltaEngine, DeltaError, DeltaPath};
use tpiin_fusion::fuse;
use tpiin_model::{
    CompanyId, InfluenceKind, InfluenceRecord, InvestmentRecord, Mutation, MutationBatch, PersonId,
    Role, RoleSet, SourceRegistry, TradingRecord,
};

fn assert_identical(a: &tpiin_fusion::Tpiin, b: &tpiin_fusion::Tpiin) {
    assert_eq!(a.edge_list(), b.edge_list());
    assert_eq!(a.person_node, b.person_node);
    assert_eq!(a.company_node, b.company_node);
    assert_eq!(a.arc_sources, b.arc_sources);
    assert_eq!(a.intra_syndicate_trades, b.intra_syndicate_trades);
    assert_eq!(a.influence_arc_count, b.influence_arc_count);
    assert_eq!(a.trading_arc_count, b.trading_arc_count);
    let la: Vec<&str> = a.graph.nodes().map(|(_, n)| n.label()).collect();
    let lb: Vec<&str> = b.graph.nodes().map(|(_, n)| n.label()).collect();
    assert_eq!(la, lb);
}

/// Streaming the whole trading network chunk by chunk must converge to
/// exactly the batch result — in both construction modes.
#[test]
fn streaming_converges_to_batch_detection() {
    let config = ProvinceConfig {
        seed: 3,
        ..ProvinceConfig::scaled(0.12)
    };
    let base = generate_province(&config);

    // Batch run: everything at once.
    let mut with_trades = base.clone();
    add_random_trading(&mut with_trades, 0.01, 33);
    let (batch_tpiin, _) = fuse(&with_trades).unwrap();
    let batch = detect(&batch_tpiin);
    let trades: Vec<_> = with_trades.tradings().to_vec();

    // TPIIN-only mode: fuse without trades, then feed them in chunks.
    let (empty_tpiin, _) = fuse(&base).unwrap();
    let mut streaming = DeltaEngine::from_tpiin(empty_tpiin);
    let mut all_groups = Vec::new();
    for chunk in trades.chunks(97) {
        let outcome = streaming.ingest(chunk).unwrap();
        assert_eq!(outcome.path, DeltaPath::TradingAppend);
        all_groups.extend(outcome.new_groups);
    }
    assert_eq!(streaming.suspicious_arcs(), &batch.suspicious_trading_arcs);
    assert_eq!(all_groups.len(), batch.group_count());
    let mut a: Vec<_> = all_groups.iter().map(|g| g.key()).collect();
    let mut b: Vec<_> = batch.groups.iter().map(|g| g.key()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);

    // Registry-backed mode additionally guarantees bit-identity with the
    // from-scratch fuse of the equivalent registry.
    let mut engine = DeltaEngine::new(base).unwrap();
    for chunk in trades.chunks(97) {
        engine.ingest(chunk).unwrap();
    }
    assert_identical(engine.tpiin(), &batch_tpiin);
    assert_eq!(engine.detection().groups, batch.groups);
    assert_eq!(
        engine.detection().suspicious_trading_arcs,
        batch.suspicious_trading_arcs
    );
}

#[test]
fn duplicates_are_skipped() {
    let (tpiin, _) = fuse(&tpiin_datagen::fig7_registry()).unwrap();
    let mut det = DeltaEngine::from_tpiin(tpiin);
    // C3 -> C5 already exists in the fused network (CompanyId 2 -> 4).
    let outcome = det
        .ingest(&[TradingRecord {
            seller: CompanyId(2),
            buyer: CompanyId(4),
            volume: 1.0,
        }])
        .unwrap();
    assert_eq!(outcome.duplicates, 1);
    assert!(outcome.new_groups.is_empty());
}

#[test]
fn intra_syndicate_trades_flagged_immediately() {
    let mut r = SourceRegistry::new();
    let l = r.add_person("L", RoleSet::of(&[Role::Ceo]));
    let c1 = r.add_company("C1");
    let c2 = r.add_company("C2");
    for c in [c1, c2] {
        r.add_influence(InfluenceRecord {
            person: l,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    for (a, b) in [(c1, c2), (c2, c1)] {
        r.add_investment(InvestmentRecord {
            investor: a,
            investee: b,
            share: 0.5,
        });
    }
    let mut det = DeltaEngine::new(r).unwrap();
    let outcome = det
        .ingest(&[TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 9.0,
        }])
        .unwrap();
    assert_eq!(outcome.intra_syndicate, 1);
    assert_eq!(outcome.new_suspicious_arcs.len(), 1);
    assert_eq!(det.tpiin().intra_syndicate_trades.len(), 1);
}

#[test]
fn counters_accumulate_across_batches() {
    let mut r = tpiin_datagen::case2_registry();
    r.clear_trading();
    let (clean, _) = fuse(&r).unwrap();
    let mut det = DeltaEngine::from_tpiin(clean);
    let o1 = det
        .ingest(&[TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(2),
            volume: 1.0,
        }])
        .unwrap();
    assert_eq!(o1.new_groups.len(), 1);
    assert_eq!(det.groups_found(), 1);
    let o2 = det
        .ingest(&[TradingRecord {
            seller: CompanyId(2),
            buyer: CompanyId(1),
            volume: 1.0,
        }])
        .unwrap();
    assert_eq!(o2.new_groups.len(), 1, "reverse direction is a new arc");
    assert_eq!(det.groups_found(), 2);
}

#[test]
fn stats_accumulate_and_publish_gauges() {
    let mut r = tpiin_datagen::case2_registry();
    r.clear_trading();
    let (clean, _) = fuse(&r).unwrap();
    let mut det = DeltaEngine::from_tpiin(clean);
    let batch = [
        TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(2),
            volume: 1.0,
        },
        TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(2),
            volume: 2.0,
        },
    ];
    det.ingest(&batch).unwrap();
    let stats = det.stats();
    assert_eq!(stats.records_ingested, 2);
    assert_eq!(stats.duplicates, 1);
    assert_eq!(stats.arcs_added, 1);
    assert_eq!(stats.groups_found, 1);
    assert_eq!(stats.intra_syndicate, 0);
    assert_eq!(stats.batches_applied, 1);
    // Published as gauges for /ingest handlers and streaming feeds
    // (a local registry here; apply targets the global one, which
    // parallel tests also write).
    let registry = tpiin_obs::MetricsRegistry::new();
    stats.publish_to(&registry);
    assert_eq!(registry.gauge("ingest.records").get(), 2.0);
    assert_eq!(registry.gauge("ingest.arcs_added").get(), 1.0);
    assert_eq!(registry.gauge("delta.batches").get(), 1.0);
}

/// Registry mutations through the incremental path match a from-scratch
/// fuse + detect, and the blast-radius escape hatch stays honest.
#[test]
fn incremental_path_matches_full_fuse() {
    let mut r = SourceRegistry::new();
    // Eight single-company components keep the two-company investment
    // delta under the default 25% blast radius.
    for i in 0..8 {
        let p = r.add_person(format!("L{i}"), RoleSet::of(&[Role::Ceo]));
        let c = r.add_company(format!("C{i}"));
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    r.add_trading(TradingRecord {
        seller: CompanyId(0),
        buyer: CompanyId(1),
        volume: 3.0,
    });
    let mut engine = DeltaEngine::new(r.clone()).unwrap();

    let batch = MutationBatch::new(vec![
        Mutation::AddInterdependence {
            a: PersonId(0),
            b: PersonId(1),
            kind: tpiin_model::InterdependenceKind::Kinship,
        },
        Mutation::AddInvestment(InvestmentRecord {
            investor: CompanyId(2),
            investee: CompanyId(3),
            share: 0.6,
        }),
        Mutation::AddInvestment(InvestmentRecord {
            investor: CompanyId(3),
            investee: CompanyId(2),
            share: 0.6,
        }),
        Mutation::AddTrading(TradingRecord {
            seller: CompanyId(2),
            buyer: CompanyId(3),
            volume: 4.0,
        }),
    ]);
    let outcome = engine.apply(&batch).unwrap();
    assert_eq!(outcome.path, DeltaPath::Incremental);
    assert!(!outcome.new_groups.is_empty(), "kin pair behind the trade");

    batch.apply_to_registry(&mut r).unwrap();
    let (expected_tpiin, _) = fuse(&r).unwrap();
    let expected = detect(&expected_tpiin);
    assert_identical(engine.tpiin(), &expected_tpiin);
    assert_eq!(engine.detection().groups, expected.groups);
    assert_eq!(engine.detection().provenances, expected.provenances);
    assert_eq!(engine.detection().per_subtpiin, expected.per_subtpiin);
}

#[test]
fn removals_fall_back_to_full_rebuild() {
    let mut r = tpiin_datagen::case2_registry();
    let mut engine = DeltaEngine::new(r.clone()).unwrap();
    let batch = MutationBatch::new(vec![Mutation::RemoveCompany {
        company: CompanyId(0),
    }]);
    let outcome = engine.apply(&batch).unwrap();
    assert_eq!(outcome.path, DeltaPath::FullRebuild);
    assert_eq!(engine.stats().full_rebuilds, 1);

    batch.apply_to_registry(&mut r).unwrap();
    let (expected_tpiin, _) = fuse(&r).unwrap();
    assert_identical(engine.tpiin(), &expected_tpiin);
    assert_eq!(engine.detection().groups, detect(&expected_tpiin).groups);
}

#[test]
fn zero_blast_radius_forces_the_fallback() {
    let mut engine = DeltaEngine::with_config(
        tpiin_datagen::case2_registry(),
        DeltaConfig {
            blast_radius: 0.0,
            ..DeltaConfig::default()
        },
    )
    .unwrap();
    let outcome = engine
        .apply(&MutationBatch::new(vec![Mutation::AddInvestment(
            InvestmentRecord {
                investor: CompanyId(0),
                investee: CompanyId(1),
                share: 0.5,
            },
        )]))
        .unwrap();
    assert_eq!(outcome.path, DeltaPath::FullRebuild);
}

#[test]
fn rejected_batches_leave_the_engine_unchanged() {
    let r = tpiin_datagen::case2_registry();
    let (reference, _) = fuse(&r).unwrap();
    let mut engine = DeltaEngine::new(r).unwrap();

    // Unknown company in a trading batch.
    let err = engine
        .ingest(&[TradingRecord {
            seller: CompanyId(99),
            buyer: CompanyId(0),
            volume: 1.0,
        }])
        .unwrap_err();
    assert!(matches!(err, DeltaError::Mutation(_)), "{err}");
    assert_identical(engine.tpiin(), &reference);

    // A removal that breaks validation (legal person disappears).
    let err = engine
        .apply(&MutationBatch::new(vec![Mutation::RemovePerson {
            person: PersonId(0),
        }]))
        .unwrap_err();
    assert!(matches!(err, DeltaError::Fusion(_)), "{err}");
    assert_identical(engine.tpiin(), &reference);
    assert_eq!(engine.stats().batches_applied, 0);
}

#[test]
fn tpiin_only_mode_rejects_registry_mutations() {
    let (tpiin, _) = fuse(&tpiin_datagen::case2_registry()).unwrap();
    let mut engine = DeltaEngine::from_tpiin(tpiin);
    let err = engine
        .apply(&MutationBatch::new(vec![Mutation::AddPerson {
            name: "X".into(),
            roles: RoleSet::of(&[Role::Ceo]),
        }]))
        .unwrap_err();
    assert!(matches!(err, DeltaError::RegistryRequired));
}

/// Shards untouched by a batch are not re-mined — and not even looked
/// up: the splice path leaves them entirely alone, so the only mining
/// work is the one component the batch touched.
#[test]
fn untouched_shards_are_left_alone() {
    let mut r = SourceRegistry::new();
    for i in 0..3 {
        let p = r.add_person(format!("L{i}"), RoleSet::of(&[Role::Ceo]));
        let a = r.add_company(format!("A{i}"));
        let b = r.add_company(format!("B{i}"));
        for c in [a, b] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_trading(TradingRecord {
            seller: a,
            buyer: b,
            volume: 1.0,
        });
    }
    let mut engine = DeltaEngine::new(r).unwrap();
    // Appending a reverse trade in component 0 leaves components 1 and 2
    // structurally untouched.
    let outcome = engine
        .ingest(&[TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(0),
            volume: 2.0,
        }])
        .unwrap();
    assert_eq!(outcome.cache_hits, 0, "untouched shards cost nothing");
    assert_eq!(outcome.shards_remined, 1);
    // Replaying the same local structure later does hit the cache: a
    // second reverse trade in component 1 re-mines a shard whose shape
    // component 0 already produced.
    let outcome = engine
        .ingest(&[TradingRecord {
            seller: CompanyId(3),
            buyer: CompanyId(2),
            volume: 2.0,
        }])
        .unwrap();
    assert_eq!(outcome.cache_hits, 1, "same local shape replays");
    assert_eq!(outcome.shards_remined, 0);
}
