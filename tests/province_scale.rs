//! Province-scale integration tests: the synthetic network of Section 5.1
//! fused end-to-end, detector vs baseline at scale, Table 1 invariants.

use tpiin::datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin::detect::{detect, segment_tpiin, Detector, DetectorConfig};
use tpiin::fusion::fuse;

#[test]
fn full_province_matches_paper_node_counts() {
    let config = ProvinceConfig::default();
    let registry = generate_province(&config);
    assert_eq!(
        registry.person_count(),
        2126,
        "776 directors + 1350 legal persons"
    );
    assert_eq!(registry.company_count(), 2452);
    let (tpiin, report) = fuse(&registry).unwrap();
    assert_eq!(
        report.persons + report.companies,
        4578,
        "Fig. 16's node count"
    );
    // Antecedent in the same range as the paper (~6 300 arcs implied by
    // Table 1's average degree column).
    assert!(
        (5_000..9_000).contains(&tpiin.influence_arc_count),
        "antecedent arcs {}",
        tpiin.influence_arc_count
    );
    // No trading yet.
    assert_eq!(tpiin.trading_arc_count, 0);
}

#[test]
fn antecedent_is_acyclic_and_rooted_at_persons() {
    let registry = generate_province(&ProvinceConfig::default());
    let (tpiin, _) = fuse(&registry).unwrap();
    // fuse() itself verifies acyclicity; segmentation roots must be
    // person nodes.
    for sub in segment_tpiin(&tpiin) {
        for root in sub.roots() {
            assert!(sub.is_person[root as usize]);
        }
    }
}

#[test]
fn scaled_province_baseline_agreement() {
    // A quarter-scale province with trading: the detector and the
    // independent baseline must produce identical group sets.
    let config = ProvinceConfig {
        seed: 99,
        ..ProvinceConfig::scaled(0.25)
    };
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, 0.004, 1234);
    let (tpiin, _) = fuse(&registry).unwrap();
    let proposed = detect(&tpiin);
    let baseline = tpiin::detect::baseline::detect_baseline(&tpiin, 10_000_000);
    assert!(!baseline.overflowed);
    assert!(
        proposed.group_count() > 0,
        "a quarter province at p=0.004 has groups"
    );
    let mut a: Vec<_> = proposed.groups.iter().map(|g| g.key()).collect();
    let mut b: Vec<_> = baseline.groups.iter().map(|g| g.key()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(
        proposed.suspicious_trading_arcs,
        baseline.suspicious_trading_arcs
    );
}

#[test]
fn suspicious_percentage_is_flat_across_probabilities() {
    // Table 1's key observation: the suspicious share stays ~5 % while
    // total trading arcs grow 50x.
    let config = ProvinceConfig::default();
    let base = generate_province(&config);
    let mut percentages = Vec::new();
    for (i, p) in [0.002, 0.01, 0.05].into_iter().enumerate() {
        let mut registry = base.clone();
        add_random_trading(&mut registry, p, 77 + i as u64);
        let (tpiin, _) = fuse(&registry).unwrap();
        let result = Detector::new(DetectorConfig {
            collect_groups: false,
            ..Default::default()
        })
        .detect(&tpiin);
        percentages.push(result.suspicious_percentage());
    }
    for pct in &percentages {
        assert!(
            (4.5..6.0).contains(pct),
            "suspicious percentage {pct} outside the paper's band: {percentages:?}"
        );
    }
    let spread = percentages.iter().cloned().fold(f64::MIN, f64::max)
        - percentages.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.0, "percentage should be flat, spread {spread}");
}

#[test]
fn group_counts_grow_linearly_with_probability() {
    let config = ProvinceConfig::default();
    let base = generate_province(&config);
    let mut counts = Vec::new();
    for p in [0.002, 0.004, 0.008] {
        let mut registry = base.clone();
        add_random_trading(&mut registry, p, 4242);
        let (tpiin, _) = fuse(&registry).unwrap();
        let result = Detector::new(DetectorConfig {
            collect_groups: false,
            ..Default::default()
        })
        .detect(&tpiin);
        counts.push(result.group_count() as f64);
    }
    // Doubling p roughly doubles group counts (Table 1's trend).
    let r1 = counts[1] / counts[0];
    let r2 = counts[2] / counts[1];
    assert!((1.5..3.0).contains(&r1), "ratios {counts:?}");
    assert!((1.5..3.0).contains(&r2), "ratios {counts:?}");
}

#[test]
fn parallel_detection_matches_serial_at_scale() {
    let config = ProvinceConfig::default();
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, 0.01, 5);
    let (tpiin, _) = fuse(&registry).unwrap();
    let serial = Detector::new(DetectorConfig {
        collect_groups: false,
        ..Default::default()
    })
    .detect(&tpiin);
    let parallel = Detector::new(DetectorConfig {
        collect_groups: false,
        threads: 8,
        ..Default::default()
    })
    .detect(&tpiin);
    assert_eq!(serial.complex_group_count, parallel.complex_group_count);
    assert_eq!(serial.simple_group_count, parallel.simple_group_count);
    assert_eq!(
        serial.suspicious_trading_arcs,
        parallel.suspicious_trading_arcs
    );
}

#[test]
fn segmentation_covers_every_node_exactly_once() {
    let registry = generate_province(&ProvinceConfig::default());
    let (tpiin, _) = fuse(&registry).unwrap();
    let subs = segment_tpiin(&tpiin);
    let mut seen = vec![false; tpiin.node_count()];
    for sub in &subs {
        for &g in &sub.global {
            assert!(!seen[g.index()], "node {g:?} in two subTPIINs");
            seen[g.index()] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));
    assert!(
        subs.len() > 10,
        "the province has many conglomerate components"
    );
}

#[test]
fn edge_list_export_round_trips_arc_counts() {
    let config = ProvinceConfig::scaled(0.1);
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, 0.01, 9);
    let (tpiin, _) = fuse(&registry).unwrap();
    let listing = tpiin.edge_list();
    let influence_rows = listing.lines().filter(|l| l.ends_with("\t1")).count();
    let trading_rows = listing.lines().filter(|l| l.ends_with("\t0")).count();
    assert_eq!(influence_rows, tpiin.influence_arc_count);
    assert_eq!(trading_rows, tpiin.trading_arc_count);
}
