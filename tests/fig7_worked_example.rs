//! Reproduces the paper's worked example end-to-end: Fig. 7 (un-contracted
//! network) -> Fig. 8 (fused subTPIIN) -> Fig. 10 (potential component
//! pattern base, 15 rows) -> the three suspicious groups of Section 4.3.

use std::collections::BTreeSet;
use tpiin::datagen::{fig7_registry, FIG7_EXPECTED_PATTERNS};
use tpiin::detect::{detect, generate_pattern_base, segment_tpiin};
use tpiin::fusion::fuse;

#[test]
fn fig8_single_subtpiin() {
    let (tpiin, _) = fuse(&fig7_registry()).unwrap();
    let subs = segment_tpiin(&tpiin);
    assert_eq!(subs.len(), 1, "the paper obtains exactly one subTPIIN");
    let sub = &subs[0];
    assert_eq!(sub.node_count(), 15);
    assert_eq!(sub.influence_arc_count(), 14);
    assert_eq!(sub.trading_arc_count, 5);
    // Roots are the seven person(-syndicate) nodes.
    assert_eq!(sub.roots().count(), 7);
}

#[test]
fn fig10_component_pattern_base() {
    let (tpiin, _) = fuse(&fig7_registry()).unwrap();
    let subs = segment_tpiin(&tpiin);
    let base = generate_pattern_base(&subs[0], usize::MAX).unwrap();
    assert_eq!(
        base.len(),
        15,
        "Fig. 10 lists 15 suspicious relationship trails"
    );

    let rendered: BTreeSet<String> = base.iter().map(|p| p.render(&tpiin)).collect();
    let expected: BTreeSet<String> = FIG7_EXPECTED_PATTERNS
        .iter()
        .map(|(prefix, target)| match target {
            Some(t) => format!("{} -> {t}", prefix.join(", ")),
            None => prefix.join(", "),
        })
        .collect();
    assert_eq!(rendered, expected);
}

#[test]
fn section_43_suspicious_groups() {
    let (tpiin, _) = fuse(&fig7_registry()).unwrap();
    let result = detect(&tpiin);

    assert_eq!(
        result.group_count(),
        3,
        "the paper finds exactly three groups"
    );
    assert_eq!(result.complex_group_count, 0);
    assert_eq!(result.simple_group_count, 3);

    // Group membership, by label sets.
    let member_sets: BTreeSet<Vec<String>> = result
        .groups
        .iter()
        .map(|g| {
            let mut labels: Vec<String> = g
                .members()
                .into_iter()
                .map(|n| tpiin.label(n).to_string())
                .collect();
            labels.sort();
            labels
        })
        .collect();
    let expected: BTreeSet<Vec<String>> = [
        vec!["C1", "C2", "C3", "C5", "L6+LB"], // the paper's (L1, C1, C2, C3, C5)
        vec!["B1", "C5", "C6"],
        vec!["B5+B6", "C7", "C8"], // the paper's (B2, C7, C8)
    ]
    .into_iter()
    .map(|v| v.into_iter().map(String::from).collect())
    .collect();
    assert_eq!(member_sets, expected);

    // Suspicious trading relationships: C3 -> C5, C5 -> C6, C7 -> C8.
    let arcs: BTreeSet<(String, String)> = result
        .suspicious_trading_arcs
        .iter()
        .map(|&(s, t)| (tpiin.label(s).to_string(), tpiin.label(t).to_string()))
        .collect();
    let expected_arcs: BTreeSet<(String, String)> = [("C3", "C5"), ("C5", "C6"), ("C7", "C8")]
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    assert_eq!(arcs, expected_arcs);
    assert_eq!(result.total_trading_arcs, 5);
}

#[test]
fn baseline_agrees_on_the_worked_example() {
    let (tpiin, _) = fuse(&fig7_registry()).unwrap();
    let proposed = detect(&tpiin);
    let base = tpiin::detect::baseline::detect_baseline(&tpiin, 1_000_000);
    assert!(!base.overflowed);
    let mut a: Vec<_> = proposed.groups.iter().map(|g| g.key()).collect();
    let mut b: Vec<_> = base.groups.iter().map(|g| g.key()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(
        proposed.suspicious_trading_arcs,
        base.suspicious_trading_arcs
    );
}
