//! End-to-end reproduction of the three Section 3.1 case studies: each
//! must yield exactly the suspicious group the paper's tax administration
//! office identified.

use tpiin::datagen::{case1_registry, case2_registry, case3_registry};
use tpiin::detect::{detect, score_group, GroupKind};
use tpiin::fusion::fuse;

#[test]
fn case1_kinship_behind_transfer_pricing() {
    // Fig. 1: two trails (L' -> C1 -> C3) and (L' -> C2) behind the IAT
    // C3 -> C2, after merging the brothers L1/L2.
    let (tpiin, _) = fuse(&case1_registry()).unwrap();
    let result = detect(&tpiin);
    assert_eq!(result.group_count(), 1);
    let g = &result.groups[0];
    assert_eq!(g.kind, GroupKind::Matched);
    assert_eq!(tpiin.label(g.antecedent), "L1+L2");
    let trade: Vec<&str> = g.trail_with_trade.iter().map(|&n| tpiin.label(n)).collect();
    assert_eq!(trade, vec!["L1+L2", "C1", "C3"]);
    let plain: Vec<&str> = g.trail_plain.iter().map(|&n| tpiin.label(n)).collect();
    assert_eq!(plain, vec!["L1+L2", "C2"]);
    assert_eq!(
        (tpiin.label(g.trading_arc.0), tpiin.label(g.trading_arc.1)),
        ("C3", "C2")
    );
    assert!(g.simple, "Fig. 1(c) trails share only L' — a simple group");
}

#[test]
fn case2_common_investor_triangle() {
    // Fig. 3(a): (C4 -> C5) + (C4 -> C6) behind the IAT C5 -> C6.  With
    // root anchoring the trails extend to C4's legal person, sharing C4 —
    // the group is complex but contains exactly the paper's triangle.
    let (tpiin, _) = fuse(&case2_registry()).unwrap();
    let result = detect(&tpiin);
    assert_eq!(result.group_count(), 1);
    let g = &result.groups[0];
    let mut members: Vec<&str> = g.members().into_iter().map(|n| tpiin.label(n)).collect();
    members.sort_unstable();
    assert_eq!(members, vec!["C4", "C5", "C6", "L4"]);
    assert!(!g.simple, "trails share the common investor C4");
    assert_eq!(
        (tpiin.label(g.trading_arc.0), tpiin.label(g.trading_arc.1)),
        ("C5", "C6")
    );
}

#[test]
fn case3_interlocked_directors() {
    // Fig. 3(b): the acting-together agreement merges B3/B4/B5 into B;
    // (B -> C7) + (B -> C8) behind the IAT C7 -> C8.
    let (tpiin, _) = fuse(&case3_registry()).unwrap();
    let result = detect(&tpiin);
    assert_eq!(result.group_count(), 1);
    let g = &result.groups[0];
    assert_eq!(tpiin.label(g.antecedent), "B3+B4+B5");
    let mut members: Vec<&str> = g.members().into_iter().map(|n| tpiin.label(n)).collect();
    members.sort_unstable();
    assert_eq!(members, vec!["B3+B4+B5", "C7", "C8"]);
    assert!(g.simple);
}

#[test]
fn case_scores_rank_by_volume_at_stake() {
    // Case 3 moves 90M RMB, Case 1 25.52M: the weighted extension must
    // rank Case 3's group above Case 1's.
    let (t1, _) = fuse(&case1_registry()).unwrap();
    let (t3, _) = fuse(&case3_registry()).unwrap();
    let g1 = detect(&t1).groups.remove(0);
    let g3 = detect(&t3).groups.remove(0);
    let s1 = score_group(&t1, &g1);
    let s3 = score_group(&t3, &g3);
    assert!(s3.score > s1.score);
    assert_eq!(s3.trade_volume, 90_000_000.0);
}

#[test]
fn explanations_read_as_proof_chains() {
    for registry in [case1_registry(), case2_registry(), case3_registry()] {
        let (tpiin, _) = fuse(&registry).unwrap();
        let result = detect(&tpiin);
        for g in &result.groups {
            let text = g.explain(&tpiin);
            assert!(text.contains("IAT"), "{text}");
            assert!(text.contains("->TR"), "{text}");
            assert!(text.contains("trail"), "{text}");
        }
    }
}
