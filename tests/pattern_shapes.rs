//! The graph-based pattern shapes of Fig. 3: triangle, quadrilateral,
//! pentagon and hexagon.  Each shape hides exactly one trading
//! relationship behind two same-antecedent trails; the detector must find
//! exactly one group per shape, with the right members, and must *not*
//! fire on near-miss variants (reversed influence, missing trail).

use tpiin::detect::detect;
use tpiin::fusion::fuse;
use tpiin::model::{
    InfluenceKind, InfluenceRecord, InvestmentRecord, Role, RoleSet, SourceRegistry, TradingRecord,
};

/// Builds a registry with `n` companies (each with its own legal person),
/// the given investment arcs, and one trading arc.
fn shape(
    n: usize,
    investments: &[(usize, usize)],
    shared_director_of: &[usize],
    trade: (usize, usize),
) -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let companies: Vec<_> = (0..n).map(|i| r.add_company(format!("C{i}"))).collect();
    for (i, &c) in companies.iter().enumerate() {
        let lp = r.add_person(format!("L{i}"), RoleSet::of(&[Role::Ceo]));
        r.add_influence(InfluenceRecord {
            person: lp,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    if !shared_director_of.is_empty() {
        let b = r.add_person("B", RoleSet::of(&[Role::Director]));
        for &c in shared_director_of {
            r.add_influence(InfluenceRecord {
                person: b,
                company: companies[c],
                kind: InfluenceKind::DirectorOf,
                is_legal_person: false,
            });
        }
    }
    for &(a, b) in investments {
        r.add_investment(InvestmentRecord {
            investor: companies[a],
            investee: companies[b],
            share: 0.6,
        });
    }
    r.add_trading(TradingRecord {
        seller: companies[trade.0],
        buyer: companies[trade.1],
        volume: 1.0,
    });
    r
}

/// Groups whose trading arc is the planted one (legal persons create no
/// extra trails here, but each company's own LP roots one trail chain).
fn planted_groups(r: &SourceRegistry) -> Vec<(Vec<String>, bool)> {
    let (tpiin, _) = fuse(r).unwrap();
    detect(&tpiin)
        .groups
        .iter()
        .map(|g| {
            let mut members: Vec<String> = g
                .members()
                .into_iter()
                .map(|n| tpiin.label(n).to_string())
                .collect();
            members.sort();
            (members, g.simple)
        })
        .collect()
}

#[test]
fn triangle_same_investor() {
    // Fig. 3(a): C0 invests in C1 and C2; C1 trades with C2.
    let r = shape(3, &[(0, 1), (0, 2)], &[], (1, 2));
    let groups = planted_groups(&r);
    assert_eq!(groups.len(), 1);
    // Root-anchored at C0's legal person; the triangle C0,C1,C2 plus L0.
    assert_eq!(groups[0].0, vec!["C0", "C1", "C2", "L0"]);
    assert!(!groups[0].1, "trails share C0: complex around the anchor");
}

#[test]
fn triangle_shared_director() {
    // Fig. 3(b): director syndicate B controls C0 and C1 directly.
    let r = shape(2, &[], &[0, 1], (0, 1));
    let groups = planted_groups(&r);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].0, vec!["B", "C0", "C1"]);
    assert!(groups[0].1, "two depth-1 trails: a simple group");
}

#[test]
fn quadrilateral_one_hop_imbalance() {
    // Fig. 3(c)-style: B directs C0 directly and C1 via C2 (B -> C2 -> C1),
    // trading C0 -> C1.
    let r = shape(3, &[(2, 1)], &[0, 2], (0, 1));
    let groups = planted_groups(&r);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].0, vec!["B", "C0", "C1", "C2"]);
    assert!(groups[0].1, "disjoint trails B->C0 and B->C2->C1: simple");
}

#[test]
fn pentagon_case1_shape() {
    // Fig. 1(c): L' -> C0 -> C2 and L' -> C1, trading C2 -> C1; here the
    // common antecedent is the shared director B over C0 and C1.
    let r = shape(3, &[(0, 2)], &[0, 1], (2, 1));
    let groups = planted_groups(&r);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].0, vec!["B", "C0", "C1", "C2"]);
    assert!(groups[0].1);
}

#[test]
fn hexagon_two_investment_chains() {
    // Hexagon: B -> C0 -> C2 (trade source side) and B -> C1 -> C3, with
    // trading C2 -> C3: six nodes in the cycle B,C0,C2,(TR),C3,C1.
    let r = shape(4, &[(0, 2), (1, 3)], &[0, 1], (2, 3));
    let groups = planted_groups(&r);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].0, vec!["B", "C0", "C1", "C2", "C3"]);
    assert!(groups[0].1, "fully disjoint two-hop trails: simple");
}

#[test]
fn reversed_trading_arc_still_matches_symmetrically() {
    // The IAT hint is directionless in the antecedent: trading C2 -> C1
    // vs C1 -> C2 both sit under the same antecedent.
    let forward = shape(3, &[(0, 1), (0, 2)], &[], (1, 2));
    let backward = shape(3, &[(0, 1), (0, 2)], &[], (2, 1));
    assert_eq!(planted_groups(&forward).len(), 1);
    assert_eq!(planted_groups(&backward).len(), 1);
}

#[test]
fn no_common_antecedent_no_group() {
    // Two disjoint ownership chains trading with each other: unsuspicious.
    let r = shape(4, &[(0, 1), (2, 3)], &[], (1, 3));
    assert!(planted_groups(&r).is_empty());
}

#[test]
fn influence_direction_matters() {
    // C1 invests in C0 (not the other way around): no antecedent trail
    // from a common node to both C1's buyer side... construct: C0 <- C1,
    // C0 <- C2 (both invest INTO C0), trading C1 -> C2.  The would-be
    // antecedent C0 has no outgoing influence: no group.
    let r = shape(3, &[(1, 0), (2, 0)], &[], (1, 2));
    assert!(planted_groups(&r).is_empty());
}

#[test]
fn deeper_chains_scale_the_shape() {
    // B -> C0 -> C1 -> C2 -> C3 (chain) and B -> C4, trading C3 -> C4:
    // a long "polygon" still forms exactly one simple group.
    let r = shape(5, &[(0, 1), (1, 2), (2, 3)], &[0, 4], (3, 4));
    let groups = planted_groups(&r);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].0, vec!["B", "C0", "C1", "C2", "C3", "C4"]);
    assert!(groups[0].1);
}
