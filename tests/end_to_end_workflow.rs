//! One scenario through the whole system: generate → save to CSV → load →
//! fuse → snapshot → restore → detect → query → stream a second day of
//! trades → write reports → parse the summary back.  Every surface the
//! deployed system would touch, in one test.

use std::collections::BTreeSet;
use tpiin::datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin::delta::DeltaEngine;
use tpiin::detect::{detect, groups_behind_arc};
use tpiin::fusion::fuse;
use tpiin::io::json::Json;
use tpiin::io::{registry_csv, reports, snapshot};
use tpiin::model::TradingRecord;

#[test]
fn full_workflow_round_trip() {
    let workdir = std::env::temp_dir().join(format!("tpiin-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&workdir);

    // Day 0: master data arrives and is archived as CSV.
    let config = ProvinceConfig {
        seed: 17,
        ..ProvinceConfig::scaled(0.2)
    };
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, 0.004, 17);
    registry_csv::save_registry(&registry, &workdir.join("extracts")).unwrap();
    let loaded = registry_csv::load_registry(&workdir.join("extracts")).unwrap();
    assert_eq!(loaded.tradings(), registry.tradings());

    // Fuse once, snapshot, restore — detection agrees across the boundary.
    let (tpiin, _) = fuse(&loaded).unwrap();
    let restored = snapshot::read_snapshot(&snapshot::write_snapshot(&tpiin)).unwrap();
    let result = detect(&tpiin);
    let result_restored = detect(&restored);
    assert_eq!(result.group_count(), result_restored.group_count());
    assert!(result.group_count() > 0, "fixture produces groups");

    // Spot-check: per-arc queries agree with the full run.
    let arc = *result.suspicious_trading_arcs.iter().next().unwrap();
    let queried = groups_behind_arc(&restored, arc.0, arc.1);
    let expected = result
        .groups
        .iter()
        .filter(|g| g.trading_arc == arc)
        .count();
    assert_eq!(queried.len(), expected);

    // Day 1: a new batch of trades streams in (snapshot-only mode: the
    // restored TPIIN has no registry behind it, so the engine patches
    // trading arcs surgically).
    let mut streaming = DeltaEngine::from_tpiin(restored);
    let known: BTreeSet<(u32, u32)> = loaded
        .tradings()
        .iter()
        .map(|t| (t.seller.0, t.buyer.0))
        .collect();
    let fresh: Vec<TradingRecord> = {
        let mut extra = loaded.clone();
        extra.clear_trading();
        add_random_trading(&mut extra, 0.002, 99);
        extra
            .tradings()
            .iter()
            .filter(|t| !known.contains(&(t.seller.0, t.buyer.0)))
            .copied()
            .collect()
    };
    assert!(!fresh.is_empty());
    let outcome = streaming.ingest(&fresh).expect("day-1 records are valid");
    // The day-1 result equals a from-scratch batch over day-0 + day-1.
    let mut combined = loaded.clone();
    for t in &fresh {
        combined.add_trading(*t);
    }
    let (combined_tpiin, _) = fuse(&combined).unwrap();
    let batch = detect(&combined_tpiin);
    assert_eq!(
        result.group_count() + outcome.new_groups.len(),
        batch.group_count(),
        "streaming day-1 groups + day-0 groups == batch over both days"
    );

    // Findings are archived in the paper's report layout.
    let files = reports::write_reports(&combined_tpiin, &batch, &workdir.join("findings")).unwrap();
    assert!(files >= 3);
    let summary_text =
        std::fs::read_to_string(workdir.join("findings").join("summary.json")).unwrap();
    let summary = Json::parse(&summary_text).unwrap();
    assert_eq!(
        summary.get("complex_groups").and_then(Json::as_f64),
        Some(batch.complex_group_count as f64)
    );

    std::fs::remove_dir_all(&workdir).unwrap();
}
