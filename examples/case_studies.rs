//! The paper's three real tax-evasion cases (Section 3.1), reproduced as
//! graph patterns and mined end-to-end.
//!
//! ```sh
//! cargo run --example case_studies
//! ```

use tpiin::datagen::{case1_registry, case2_registry, case3_registry};
use tpiin::detect::{detect, score_group};
use tpiin::fusion::fuse;
use tpiin::model::SourceRegistry;

fn run(name: &str, background: &str, registry: SourceRegistry) {
    println!("== {name} ==");
    println!("{background}");
    let (tpiin, _) = fuse(&registry).expect("case registries are valid");
    let result = detect(&tpiin);
    assert_eq!(result.group_count(), 1, "each case hides exactly one group");
    for group in &result.groups {
        println!("  detected: {}", group.explain(&tpiin));
        let score = score_group(&tpiin, group);
        println!(
            "  ranking score: {:.3} x {:.0} = {:.0}\n",
            score.chain_strength, score.trade_volume, score.score
        );
    }
}

fn main() {
    run(
        "Case 1 — transfer pricing through kin legal persons",
        "C3 (producer, fully owned by C1) sells everything to C2; the legal\n\
         persons of C1 and C2 are brothers.  The TAO adjusted C3's taxable\n\
         income by 25.52M RMB for violating the arm's-length principle.",
        case1_registry(),
    );
    run(
        "Case 2 — common partial investor, cross-border underpricing",
        "C5 sold 5000 smart meters to Hong Kong's C6 at $20 instead of $30;\n\
         C4 holds shares of both.  The TAO adjusted the transaction by $5000.",
        case2_registry(),
    );
    run(
        "Case 3 — interlocked directors behind an export",
        "C7 exported 90M RMB of BMX to C8; their controlling investors B3/B4\n\
         act in concert with B5 over C9 (director interlocking).  The TAO\n\
         added 19.89M RMB to C7's taxable profit.",
        case3_registry(),
    );
}
