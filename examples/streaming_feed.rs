//! Streaming detection over a daily transaction feed.
//!
//! The national system ingests up to ten million trading records a day;
//! the ownership/kinship antecedent network changes far more slowly.
//! This example fuses the antecedent network once, then replays a
//! trading network in daily batches through the delta engine
//! ([`tpiin::delta::DeltaEngine`]), printing the newly discovered
//! suspicious groups per batch.
//!
//! ```sh
//! cargo run --release --example streaming_feed
//! ```

use tpiin::datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin::delta::DeltaEngine;
use tpiin::fusion::fuse;

fn main() {
    // The antecedent network: fused once, like a nightly master-data job.
    let config = ProvinceConfig::default();
    let base = generate_province(&config);
    let (tpiin, report) = fuse(&base).expect("generated registry is valid");
    println!(
        "antecedent network ready: {} nodes, {} influence arcs\n",
        report.tpiin_nodes, report.influence_arcs
    );
    let mut detector = DeltaEngine::from_tpiin(tpiin);

    // The feed: one month of trading relationships, replayed in five
    // "days" of roughly equal volume.
    let mut feed = base.clone();
    add_random_trading(&mut feed, 0.002, config.seed);
    let records: Vec<_> = feed.tradings().to_vec();
    let per_day = records.len().div_ceil(5);

    let start = std::time::Instant::now();
    for (day, batch) in records.chunks(per_day).enumerate() {
        let outcome = detector.ingest(batch).expect("trading records are valid");
        println!(
            "day {}: {} records -> {} new suspicious arcs, {} new groups ({} duplicates)",
            day + 1,
            batch.len(),
            outcome.new_suspicious_arcs.len(),
            outcome.new_groups.len(),
            outcome.duplicates,
        );
        if let Some(group) = outcome.new_groups.first() {
            println!("       e.g. {}", group.explain(detector.tpiin()));
        }
    }
    let stats = detector.stats();
    println!(
        "\ntotal: {} records ({} duplicates, {} intra-syndicate) -> {} arcs added, \
         {} suspicious arcs, {} groups, processed in {:?}",
        stats.records_ingested,
        stats.duplicates,
        stats.intra_syndicate,
        stats.arcs_added,
        detector.suspicious_arcs().len(),
        stats.groups_found,
        start.elapsed()
    );
}
