//! National-scale run: several provinces fused into one TPIIN, with a
//! trading network spanning province borders.
//!
//! Inter-province trades can never hide a common interest party (the
//! antecedent networks are province-local), so Algorithm 1's
//! segmentation discards them before any pattern tree is built — the
//! divide-and-conquer payoff the paper's future work aims at.
//!
//! ```sh
//! cargo run --release --example national_scale
//! ```

use tpiin::datagen::{add_random_trading, generate_nation, ProvinceConfig};
use tpiin::detect::{segment_tpiin, Detector, DetectorConfig};
use tpiin::fusion::fuse;

fn main() {
    let provinces = 6;
    let base = ProvinceConfig::default();
    let build_start = std::time::Instant::now();
    let mut registry = generate_nation(provinces, &base);
    // A sparse national trading network over all companies: most arcs
    // cross province borders.
    let arcs = add_random_trading(&mut registry, 0.0005, base.seed);
    println!(
        "nation: {} provinces, {} persons, {} companies, {} trading relationships ({:?} to generate)",
        provinces,
        registry.person_count(),
        registry.company_count(),
        arcs,
        build_start.elapsed()
    );

    let fuse_start = std::time::Instant::now();
    let (tpiin, report) = fuse(&registry).expect("generated registry is valid");
    println!(
        "fused: {} nodes, {} influence + {} trading arcs in {:?}",
        report.tpiin_nodes,
        report.influence_arcs,
        report.trading_arcs,
        fuse_start.elapsed()
    );

    let subs = segment_tpiin(&tpiin);
    let kept: usize = subs.iter().map(|s| s.trading_arc_count).sum();
    println!(
        "segmentation: {} subTPIINs; {} of {} trading arcs stay inside a component ({:.1}% discarded up front)",
        subs.len(),
        kept,
        tpiin.trading_arc_count,
        100.0 * (1.0 - kept as f64 / tpiin.trading_arc_count.max(1) as f64)
    );

    let detect_start = std::time::Instant::now();
    let detector = Detector::new(DetectorConfig {
        collect_groups: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..Default::default()
    });
    let result = detector.detect_segmented(&tpiin, &subs);
    println!(
        "detected {} groups ({} complex, {} simple) behind {} arcs in {:?}",
        result.group_count(),
        result.complex_group_count,
        result.simple_group_count,
        result.suspicious_trading_arcs.len(),
        detect_start.elapsed()
    );
}
