//! The tax investigator's workflow (the Servyou-style system of Section
//! 6): generate a province-scale TPIIN, mine all suspicious groups, and
//! rank them by the weighted score so the audit queue starts with the
//! tightest control chains moving the most money.
//!
//! ```sh
//! cargo run --release --example audit_ranking
//! ```

use tpiin::datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin::detect::{detect, score_group};
use tpiin::fusion::fuse;

fn main() {
    let config = ProvinceConfig::default();
    let mut registry = generate_province(&config);
    let arcs = add_random_trading(&mut registry, 0.002, config.seed);
    println!(
        "province: {} persons, {} companies, {} trading relationships",
        registry.person_count(),
        registry.company_count(),
        arcs
    );

    let (tpiin, _) = fuse(&registry).expect("generated registry is valid");
    let start = std::time::Instant::now();
    let result = detect(&tpiin);
    println!(
        "mined {} suspicious groups behind {} trading arcs in {:?}",
        result.group_count(),
        result.suspicious_trading_arcs.len(),
        start.elapsed()
    );
    println!(
        "the MSG phase narrows the audit to {:.2}% of all trading relationships\n",
        result.suspicious_percentage()
    );

    let mut ranked: Vec<_> = result
        .groups
        .iter()
        .map(|g| (score_group(&tpiin, g), g))
        .collect();
    ranked.sort_by(|a, b| b.0.score.total_cmp(&a.0.score));

    println!("audit queue — top 10 groups by score:");
    for (rank, (score, group)) in ranked.iter().take(10).enumerate() {
        println!(
            "{:>2}. score {:>12.0}  {}",
            rank + 1,
            score.score,
            group.explain(&tpiin)
        );
    }
}
