//! A compact version of the paper's Table 1 sweep: how suspicious-group
//! and suspicious-arc counts scale as the trading network densifies, with
//! the suspicious *percentage* staying flat near 5 %.
//!
//! ```sh
//! cargo run --release --example probability_sweep
//! ```

use tpiin::datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin::detect::{Detector, DetectorConfig};
use tpiin::fusion::fuse;

fn main() {
    let config = ProvinceConfig::default();
    let base = generate_province(&config);
    let detector = Detector::new(DetectorConfig {
        collect_groups: false, // counting-only: no per-group allocation
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..Default::default()
    });

    println!(
        "{:>7} {:>10} {:>10} {:>11} {:>11} {:>8}",
        "p", "complex", "simple", "susp_arcs", "total_arcs", "susp_%"
    );
    for p in [0.002, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let mut registry = base.clone();
        add_random_trading(&mut registry, p, config.seed ^ (p * 1e6) as u64);
        let (tpiin, _) = fuse(&registry).expect("generated registry is valid");
        let result = detector.detect(&tpiin);
        println!(
            "{:>7.3} {:>10} {:>10} {:>11} {:>11} {:>8.3}",
            p,
            result.complex_group_count,
            result.simple_group_count,
            result.suspicious_trading_arcs.len(),
            result.total_trading_arcs,
            result.suspicious_percentage()
        );
    }
}
