//! The paper's file-based workflow end to end: source extracts arrive as
//! CSV files, are loaded and fused, mined, and the findings are written
//! back out as the per-subTPIIN `susGroup(i)` / `susTrade(i)` files of
//! Algorithm 1 plus a JSON summary — the shape a provincial tax office
//! integration would consume.
//!
//! ```sh
//! cargo run --release --example file_pipeline
//! ```

use tpiin::datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin::detect::detect;
use tpiin::fusion::fuse;
use tpiin::io::{edgelist, graphml, registry_csv, reports};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workdir = std::env::temp_dir().join("tpiin-file-pipeline");
    let extracts = workdir.join("extracts");
    let findings = workdir.join("findings");
    let _ = std::fs::remove_dir_all(&workdir);

    // 1. "Receive" the source extracts: a quarter-scale province saved as
    //    six CSV files.
    let config = ProvinceConfig {
        seed: 7,
        ..ProvinceConfig::scaled(0.25)
    };
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, 0.004, 7);
    registry_csv::save_registry(&registry, &extracts)?;
    println!("extracts written to {}", extracts.display());

    // 2. Load them back (validating), fuse into a TPIIN.
    let loaded = registry_csv::load_registry(&extracts)?;
    let (tpiin, report) = fuse(&loaded)?;
    println!("\nfused:\n{}", report.summary());

    // 3. Mine suspicious groups and write the paper's report layout.
    let result = detect(&tpiin);
    let files = reports::write_reports(&tpiin, &result, &findings)?;
    println!(
        "\n{} groups behind {} of {} trading arcs; {} report files in {}",
        result.group_count(),
        result.suspicious_trading_arcs.len(),
        result.total_trading_arcs,
        files,
        findings.display()
    );

    // 4. Also export the interchange formats: the r x 3 edge list the
    //    paper's Algorithm 1 consumes, and GraphML for Gephi.
    std::fs::write(
        workdir.join("tpiin.edgelist"),
        edgelist::render_edge_list(&tpiin),
    )?;
    std::fs::write(
        workdir.join("tpiin.graphml"),
        graphml::tpiin_graphml(&tpiin),
    )?;

    // 5. Show a taste of the findings.
    let summary = std::fs::read_to_string(findings.join("summary.json"))?;
    let preview: String = summary.lines().take(8).collect::<Vec<_>>().join("\n");
    println!("\nsummary.json (head):\n{preview}\n...");

    std::fs::remove_dir_all(&workdir)?;
    Ok(())
}
