//! The complete Fig. 4 flow: MSG phase (mine suspicious groups from the
//! fused TPIIN) followed by the ITE phase (arm's-length screening of the
//! transactions inside the suspicious relationships), compared against
//! the traditional one-by-one screening of every transaction.
//!
//! ```sh
//! cargo run --release --example two_phase_pipeline
//! ```

use tpiin::datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin::detect::detect;
use tpiin::fusion::fuse;
use tpiin::ite::generator::{generate_transactions, TransactionGenConfig};
use tpiin::ite::{ItePhase, MarketModel, ScreeningScope};

fn main() {
    // --- Data: province + trading network + detail transactions. ---
    let config = ProvinceConfig::default();
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, 0.002, config.seed);
    let (tpiin, _) = fuse(&registry).expect("generated registry is valid");

    // --- MSG phase. ---
    let msg_start = std::time::Instant::now();
    let msg = detect(&tpiin);
    let msg_time = msg_start.elapsed();
    println!(
        "MSG phase: {} suspicious groups, {} of {} trading relationships flagged ({:.2}%) in {:?}",
        msg.group_count(),
        msg.suspicious_trading_arcs.len(),
        msg.total_trading_arcs,
        msg.suspicious_percentage(),
        msg_time
    );

    // Evasion is planted exactly on interest-affiliated relationships
    // (the generator's ground truth comes out alongside).
    let scope = ScreeningScope::from_msg(&tpiin, &msg);
    let ScreeningScope::SuspiciousArcs(ref affiliated) = scope else {
        unreachable!()
    };
    let gen = generate_transactions(&registry, affiliated, &TransactionGenConfig::default());
    println!(
        "transaction DB: {} detail records, {} truly evading\n",
        gen.db.len(),
        gen.evading_transactions.len()
    );

    // --- ITE phase, both scopes. ---
    let market = MarketModel::estimate(&gen.db);
    let ite = ItePhase::default();
    let mut rows = Vec::new();
    for (name, scope) in [
        (
            "one-by-one (all transactions)",
            ScreeningScope::AllTransactions,
        ),
        ("two-phase (suspicious arcs)", scope.clone()),
    ] {
        let start = std::time::Instant::now();
        let eval = ite.screen_and_evaluate(&gen.db, &market, &scope, &gen.evading_transactions);
        rows.push((name, eval, start.elapsed()));
    }

    println!(
        "{:<32} {:>10} {:>9} {:>9} {:>10} {:>12}",
        "scope", "examined", "recall", "precision", "time", "recovered"
    );
    for (name, eval, time) in &rows {
        println!(
            "{:<32} {:>9.1}% {:>8.1}% {:>8.1}% {:>10.2?} {:>12.0}",
            name,
            100.0 * eval.examined_fraction(),
            100.0 * eval.recall(),
            100.0 * eval.precision(),
            time,
            eval.recovered_revenue
        );
    }

    println!(
        "\nthe MSG phase pre-filter examines {:.1}x fewer transactions at equal recall",
        rows[0].1.candidates_examined as f64 / rows[1].1.candidates_examined.max(1) as f64
    );
}
