//! The paper's worked example end-to-end: Fig. 7 (un-contracted network)
//! through Fig. 10 (component pattern base) to the three suspicious
//! groups of Section 4.3.
//!
//! ```sh
//! cargo run --example worked_example
//! ```

use tpiin::datagen::fig7_registry;
use tpiin::detect::{detect, generate_pattern_base, segment_tpiin};
use tpiin::fusion::fuse;

fn main() {
    let registry = fig7_registry();
    let (tpiin, report) = fuse(&registry).expect("Fig. 7 registry is valid");

    println!("Fig. 7 -> Fig. 8 (interdependence contraction):");
    println!("{}\n", report.summary());

    println!("Fig. 8 edge list (source  target  color; 1 = influence/blue, 0 = trading/black):");
    print!("{}", tpiin.edge_list());

    let subs = segment_tpiin(&tpiin);
    assert_eq!(subs.len(), 1, "the example forms a single subTPIIN");

    println!("\nFig. 10 — potential component pattern base:");
    let base = generate_pattern_base(&subs[0], usize::MAX).expect("tiny network");
    for (i, pattern) in base.iter().enumerate() {
        println!("{:>2}. {}", i + 1, pattern.render(&tpiin));
    }

    println!("\nSuspicious groups (two matched component patterns each):");
    let result = detect(&tpiin);
    for group in &result.groups {
        println!("- {}", group.explain(&tpiin));
    }
    println!(
        "\n{} of {} trading relationships flagged suspicious",
        result.suspicious_trading_arcs.len(),
        result.total_trading_arcs
    );
}
