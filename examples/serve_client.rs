//! Querying a live detection daemon over HTTP.
//!
//! Starts the `tpiin-serve` daemon in-process on an ephemeral port over
//! the fig7 worked example, then plays the analyst's side of the
//! conversation with plain `std::net` sockets: health check, the
//! ancestor-cone query behind a flagged trade, a company dossier, and
//! finally a live `/ingest` that advances the snapshot epoch and
//! surfaces a brand-new suspicious group without restarting anything.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use tpiin::datagen::fig7_registry;
use tpiin::prelude::*;

/// Minimal HTTP/1.1 client: the daemon answers one request per
/// connection (`Connection: close`), so a fresh socket per call is the
/// whole protocol.
fn http(addr: SocketAddr, request: String) -> String {
    let mut stream = TcpStream::connect(addr).expect("daemon is listening");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response)
}

fn get(addr: SocketAddr, path: &str) -> String {
    http(addr, format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn main() {
    // Boot the daemon exactly as `tpiin serve` would, but in-process
    // and on an ephemeral port so the example never collides with a
    // real deployment.
    let registry = fig7_registry();
    let handle = Pipeline::from_registry(&registry)
        .serve(ServeConfig::default())
        .expect("fig7 registry serves");
    let addr = handle.addr();
    println!("daemon listening on {addr}\n");

    println!("GET /healthz\n  {}\n", get(addr, "/healthz"));

    // The paper's Section 6 query: which mined groups explain the
    // trade C3 -> C5?  The daemon resolves company labels directly.
    println!(
        "GET /groups_behind_arc?src=C3&dst=C5\n  {}\n",
        get(addr, "/groups_behind_arc?src=C3&dst=C5")
    );

    // A per-company dossier for the audit workbench.
    println!("GET /company/C5\n  {}\n", get(addr, "/company/C5"));

    // Stream one new trade in.  C1 -> C5 closes a fresh interest-gain
    // loop, so the ingest response reports a new group and the epoch
    // advances — readers that were mid-request finish on the old
    // snapshot, new requests see the new one.
    let batch = r#"{"records": [{"seller": 0, "buyer": 4, "volume": 5.0}]}"#;
    println!("POST /ingest {batch}\n  {}\n", post(addr, "/ingest", batch));

    println!("GET /healthz (after ingest)\n  {}\n", get(addr, "/healthz"));

    handle.shutdown();
    println!("daemon drained and stopped");
}
