//! Quickstart: build a tiny taxpayer network by hand, run the pipeline,
//! and read off the suspicious groups.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tpiin::prelude::*;

fn main() -> Result<(), Error> {
    // 1. Register the raw facts gathered from the data sources.
    let mut registry = SourceRegistry::new();

    // Two company bosses who happen to be siblings, plus an unrelated one.
    let alice = registry.add_person("Alice", RoleSet::of(&[Role::Ceo]));
    let bob = registry.add_person("Bob", RoleSet::of(&[Role::Ceo, Role::Chairman]));
    let carol = registry.add_person("Carol", RoleSet::of(&[Role::Ceo]));
    registry.add_interdependence(alice, bob, InterdependenceKind::Kinship);

    // Three companies; Alice's holding fully owns the factory.
    let holding = registry.add_company("HoldingCo");
    let factory = registry.add_company("FactoryCo");
    let trader = registry.add_company("TraderCo");
    for (person, company) in [(alice, holding), (bob, trader), (carol, factory)] {
        registry.add_influence(InfluenceRecord {
            person,
            company,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    registry.add_investment(InvestmentRecord {
        investor: holding,
        investee: factory,
        share: 1.0,
    });

    // The factory sells its whole output to the trader — an
    // interest-affiliated transaction hiding behind the kinship.
    registry.add_trading(TradingRecord {
        seller: factory,
        buyer: trader,
        volume: 2_000_000.0,
    });
    // A regular arm's-length sale for contrast.
    let outsider = registry.add_company("OutsiderCo");
    let dan = registry.add_person("Dan", RoleSet::of(&[Role::Ceo]));
    registry.add_influence(InfluenceRecord {
        person: dan,
        company: outsider,
        kind: InfluenceKind::CeoOf,
        is_legal_person: true,
    });
    registry.add_trading(TradingRecord {
        seller: factory,
        buyer: outsider,
        volume: 500_000.0,
    });

    // 2. Fuse into a TPIIN and mine suspicious groups, in one chain.
    let out = Pipeline::from_registry(&registry).threads(2).run()?;

    println!("fused network:\n{}\n", out.report.summary());
    println!(
        "{} of {} trading relationships are suspicious ({:.1}%)",
        out.groups.suspicious_trading_arcs.len(),
        out.groups.total_trading_arcs,
        out.groups.suspicious_percentage()
    );
    for group in &out.groups.groups {
        println!("- {}", group.explain(&out.tpiin));
        let score = score_group(&out.tpiin, group);
        println!(
            "  chain strength {:.2}, {:.0} at stake -> score {:.0}",
            score.chain_strength, score.trade_volume, score.score
        );
    }
    Ok(())
}
