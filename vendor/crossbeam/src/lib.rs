//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; it maps
//! directly onto `std::thread::scope` (stable since 1.63).  The one
//! behavioral difference: a panicking worker propagates through
//! `std::thread::scope` instead of surfacing as `Err`, so the `Ok` wrapper
//! exists purely for signature compatibility.

pub mod thread {
    /// Result type mirroring `crossbeam::thread::scope`'s signature.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Scope handle passed to [`scope`]'s closure and to spawned workers.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker; the closure receives the scope so it
        /// can spawn further work, matching crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all workers are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_borrow_and_join() {
        let hits = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
