//! Offline stand-in for `crossbeam`.
//!
//! Two slices of the crossbeam API are used in this workspace:
//!
//! * `crossbeam::thread::scope`, mapping directly onto
//!   `std::thread::scope` (stable since 1.63).  The one behavioral
//!   difference: a panicking worker propagates through
//!   `std::thread::scope` instead of surfacing as `Err`, so the `Ok`
//!   wrapper exists purely for signature compatibility.
//! * `crossbeam::deque`, the `Worker`/`Stealer`/`Steal` work-stealing
//!   deque surface.  The stand-in backs each deque with a mutexed
//!   `VecDeque` — the *semantics* match (FIFO owner pops, FIFO steals,
//!   every pushed item is taken exactly once) while the lock-free
//!   performance characteristics of the real crate do not.  Detection
//!   work items are coarse (a whole patterns tree each), so queue
//!   overhead is noise at the scales this workspace runs.

pub mod thread {
    /// Result type mirroring `crossbeam::thread::scope`'s signature.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Scope handle passed to [`scope`]'s closure and to spawned workers.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker; the closure receives the scope so it
        /// can spawn further work, matching crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all workers are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! Work-stealing deque: one [`Worker`] per thread, any number of
    //! [`Stealer`] handles onto it.
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The victim's deque was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.  The mutexed
        /// stand-in never loses races, so this variant is never produced
        /// here; callers still match on it for API compatibility.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen item, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(item) => Some(item),
                _ => None,
            }
        }
    }

    /// The owning end of a deque; pushes and pops at the front (FIFO).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle for taking items from another thread's [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO deque.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Appends an item at the back.
        pub fn push(&self, item: T) {
            self.queue.lock().expect("deque poisoned").push_back(item);
        }

        /// Takes the oldest item, if any.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_front()
        }

        /// Whether the deque currently holds no items.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }

        /// Creates a new stealing handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to take the oldest item from the victim's deque.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_borrow_and_join() {
        let hits = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deque_is_fifo_for_owner_and_stealers() {
        let worker = crate::deque::Worker::new_fifo();
        for v in 0..4 {
            worker.push(v);
        }
        assert_eq!(worker.len(), 4);
        assert_eq!(worker.pop(), Some(0));
        let stealer = worker.stealer();
        assert_eq!(stealer.steal().success(), Some(1));
        assert_eq!(stealer.clone().steal().success(), Some(2));
        assert_eq!(worker.pop(), Some(3));
        assert!(worker.is_empty());
        assert_eq!(stealer.steal().success(), None);
    }

    #[test]
    fn every_item_is_taken_exactly_once_under_contention() {
        const ITEMS: usize = 1_000;
        let worker = crate::deque::Worker::new_fifo();
        for v in 0..ITEMS {
            worker.push(v);
        }
        let stealers: Vec<_> = (0..4).map(|_| worker.stealer()).collect();
        let taken = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for stealer in &stealers {
                scope.spawn(|_| {
                    while stealer.steal().success().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(taken.load(Ordering::Relaxed), ITEMS);
        assert!(worker.is_empty());
    }
}
