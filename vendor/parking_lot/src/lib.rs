//! Offline stand-in for `parking_lot`.
//!
//! Wraps the `std::sync` primitives behind parking_lot's signatures: no
//! poisoning (a poisoned std lock is recovered transparently) and guard
//! types that deref to the protected value.  Only the surface this
//! workspace uses is provided: `Mutex` and `RwLock`.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion wrapping [`std::sync::Mutex`] without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock wrapping [`std::sync::RwLock`] without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
