//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId`, `black_box`, `Bencher::iter` — with a deliberately
//! small measurement loop: per benchmark, one warm-up call plus a short
//! timed run, reporting mean wall-clock per iteration to stdout.  No
//! statistics, plots, or baselines; enough to time hot paths offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves.
pub use std::hint::black_box;

/// Iteration driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    /// Mean wall-clock per iteration of the measured run.
    per_iter: Duration,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `iters` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.per_iter = start.elapsed() / self.iters as u32;
    }
}

/// Throughput annotation; accepted and ignored by the stub reporter.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion for the id argument of `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

fn run_one(group: &str, id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: 3,
        per_iter: Duration::ZERO,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label}: {:?} per iter ({} iters)",
        b.per_iter, b.iters
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub reports raw time only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(&self.name, &id.into_id(), |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(&self.name, &id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Benchmark manager mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one("", &id.into_id(), |b| f(b));
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group
            .sample_size(10)
            .throughput(Throughput::Elements(1))
            .bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 1);
    }
}
