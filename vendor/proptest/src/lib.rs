//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API this workspace's property
//! tests use — `proptest!`, strategy combinators (`prop_map`,
//! `prop_flat_map`, `prop_recursive`, `prop_oneof!`, `Just`,
//! `collection::vec`, ranges, tuples, `any::<bool>()`, string
//! strategies) and `TestRunner` — as a plain sample-based harness:
//! deterministic seeds, a configurable case count, **no shrinking**.
//! A failing case panics with the ordinary `assert!` message.
//!
//! One deliberate simplification: string patterns (`".*"`) are not
//! compiled as regexes; they produce arbitrary short unicode strings,
//! which is what every use in this workspace wants.

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised by a test case (via the `prop_assert*` macros the
    /// real proptest routes through this; the stub macros panic instead).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Explicit failure with a message.
        Fail(String),
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Executes a strategy against a property closure.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `test` on `config.cases` sampled values.  Panics inside
        /// `test` (from `prop_assert!` & friends) fail the surrounding
        /// `#[test]` directly; an explicit `Err` is reported here.
        pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
        where
            S: crate::strategy::Strategy,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let mut rng = TestRng::from_seed(
                    0xC0FF_EE00_D15E_A5E5 ^ (case as u64).wrapping_mul(0x1234_5678_9ABC_DEF1),
                );
                let value = strategy.sample(&mut rng);
                if let Err(e) = test(value) {
                    return Err(format!("case {case} failed: {e:?}"));
                }
            }
            Ok(())
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Generates a value, then samples from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap {
                source: self,
                map: f,
            }
        }

        /// Recursive strategies: each of `depth` layers mixes the
        /// previous layer with `f(previous layer)` so all depths occur.
        /// `desired_size`/`expected_branch_size` are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<R2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R2,
        {
            let mut layer = self.boxed();
            for _ in 0..depth {
                let deeper = f(layer.clone()).boxed();
                layer = Union::new(vec![layer, deeper]).boxed();
            }
            layer
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// Type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; sampling picks one uniformly.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! numeric_strategy {
        (int: $($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
        (float: $($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    numeric_strategy!(int: usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);
    numeric_strategy!(float: f32, f64);

    /// String patterns: the pattern text is ignored (this workspace only
    /// uses `".*"`) and arbitrary short unicode strings are produced.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            const POOL: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '"', ',', '\\', '\t', '.', '-', '_', '{',
                '}', '[', ']', ':', 'é', 'ß', '中', '🦀',
            ];
            let len = rng.below(12);
            (0..len).map(|_| POOL[rng.below(POOL.len())]).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct BoolStrategy;

    /// Uniform choice between `true` and `false`.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::BoolStrategy;
        fn arbitrary() -> Self::Strategy {
            crate::bool::BoolStrategy
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` samples.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest!` item macro: expands each property into a `#[test]`
/// function driving a [`test_runner::TestRunner`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let strategy = ($($strategy,)+);
            runner
                .run(&strategy, |values| {
                    let ($($arg,)+) = values;
                    $body
                    Ok(())
                })
                .unwrap();
        }
    )*};
}

/// `assert!` under a proptest-compatible name (no shrinking here, so a
/// plain panic is the whole failure report).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Re-export at the crate root like the real proptest does.
pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i32..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0usize..3).prop_map(|n| n * 2),
            Just(99usize),
        ]) {
            prop_assert!(v == 99 || v < 6);
        }
    }

    #[test]
    fn flat_map_derives_dependent_strategies() {
        let strategy = (1usize..5).prop_flat_map(|n| crate::collection::vec(0..n, n));
        let mut runner = TestRunner::new(ProptestConfig::with_cases(128));
        runner
            .run(&(strategy,), |(v,)| {
                assert!(!v.is_empty() && v.len() < 5);
                assert!(v.iter().all(|&e| e < v.len()));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        let leaf = any::<bool>().prop_map(|_| Tree::Leaf);
        let strategy = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut runner = TestRunner::new(ProptestConfig::with_cases(256));
        runner
            .run(&(strategy,), |(t,)| {
                assert!(depth(&t) <= 4, "{t:?}");
                Ok(())
            })
            .unwrap();
    }
}
