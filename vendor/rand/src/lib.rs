//! Offline stand-in for `rand` 0.8.
//!
//! Provides the exact surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` and
//! `SliceRandom::shuffle` — backed by a SplitMix64 generator.  The stream
//! differs from the real `rand::StdRng` (ChaCha12), so seeded outputs are
//! reproducible within this workspace but not bit-identical to upstream.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end as u128 - self.start as u128;
                (self.start as u128 + rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi as u128 - lo as u128 + 1;
                (lo as u128 + rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
uint_sample_range!(usize, u8, u16, u32, u64);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush — plenty for synthetic
    /// data generation.  Not the upstream ChaCha12 `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extension trait, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Convenience re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
