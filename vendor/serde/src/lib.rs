//! Offline stand-in for `serde`.
//!
//! The build environment has no reachable crates.io mirror, so the real
//! `serde` cannot be fetched.  This stub provides exactly the surface the
//! workspace uses: the two trait names (as markers) and the `derive`
//! re-exports.  Nothing in the workspace calls serde's runtime
//! serialization — every JSON/CSV surface is hand-written
//! (`tpiin-io::json`, `tpiin-obs::json`) — so marker traits suffice.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
