//! Offline stand-in for `serde_derive`.
//!
//! The stub `serde` traits are markers, so the derives only need to emit
//! empty impl blocks.  The input is parsed with raw `proc_macro` tokens
//! (no `syn`/`quote` available offline): scan top-level tokens for the
//! `struct`/`enum` keyword and take the following identifier as the type
//! name.  `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    for (i, tt) in tokens.iter().enumerate() {
        let TokenTree::Ident(word) = tt else { continue };
        let word = word.to_string();
        if word != "struct" && word != "enum" && word != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i + 1) else {
            break;
        };
        let name = name.to_string();
        if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
            if p.as_char() == '<' {
                panic!(
                    "serde_derive stub: generic type `{name}` is not supported; \
                     derive on concrete types only"
                );
            }
        }
        return name;
    }
    panic!("serde_derive stub: no struct/enum name found in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
